package chaos

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"lmi/internal/core"
	"lmi/internal/sim"
)

// TestCampaignDeterministicAcrossWorkers: the acceptance property the
// whole engine is built around — the same seed renders byte-identical
// reports for 1 worker and 4 workers, verbose log included.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		rep, err := Campaign{Seed: 7, Trials: 2, Workers: workers}.Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rep.Render(true)
	}
	seq := run(1)
	par := run(4)
	if seq != par {
		t.Fatalf("report differs between -jobs 1 and -jobs 4:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "chaos campaign") {
		t.Fatalf("unexpected report shape:\n%s", seq)
	}
}

// TestLMIExtentCorruptionDetection: every extent flip that lowers the
// claimed size class shrinks the bounds below what the stream victim
// touches, and LMI must detect 100% of those — at least the scripted
// Table III spatial rate. Upward flips widen the bounds, which
// in-pointer metadata architecturally cannot tell from a bigger buffer;
// they must complete with intact output and be enumerated as
// undetected.
func TestLMIExtentCorruptionDetection(t *testing.T) {
	rep, err := Campaign{Seed: 11, Trials: 10, Mechs: []string{"lmi"}}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	down, up := 0, 0
	for _, tr := range rep.Trials {
		if tr.Kind != KindExtentFlip {
			continue
		}
		var bit, oldE, newE int
		if _, err := fmt.Sscanf(tr.Detail, "extent bit %d flipped (extent %d -> %d)", &bit, &oldE, &newE); err != nil {
			t.Fatalf("trial %d: unparsable extent-flip detail %q: %v", tr.Index, tr.Detail, err)
		}
		if newE < oldE {
			down++
			if tr.Outcome != OutcomeDetected {
				t.Errorf("trial %d (%s): extent-lowering flip not detected: %s -> %s",
					tr.Index, tr.Detail, tr.Outcome, tr.Detail)
			}
			if !tr.HasFault || tr.FaultCycle == 0 {
				t.Errorf("trial %d: detected flip has no fault cycle for latency", tr.Index)
			}
		} else {
			up++
			if tr.Outcome != OutcomeTolerated {
				t.Errorf("trial %d: extent-raising flip: outcome %s, want tolerated (%s)",
					tr.Index, tr.Outcome, tr.Detail)
			}
		}
	}
	if down == 0 || up == 0 {
		t.Fatalf("seed did not exercise both flip directions (down=%d up=%d); widen Trials", down, up)
	}
	// Every non-detected injection must appear in the enumeration.
	und := rep.Undetected()
	for _, tr := range rep.Trials {
		if tr.Kind == KindControl || (tr.Outcome != OutcomeMissed && tr.Outcome != OutcomeTolerated) {
			continue
		}
		found := false
		for _, u := range und {
			if u.Index == tr.Index {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("undetected trial %d missing from enumeration", tr.Index)
		}
	}
}

// TestCampaignMatrixExpectations pins the architecturally-determined
// cells of the matrix: the temporal-safety split between plain LMI and
// the liveness tracker, misround detection, graceful exhaustion, no
// false positives on controls, and zero engine degradation.
func TestCampaignMatrixExpectations(t *testing.T) {
	rep, err := Campaign{Seed: 3, Trials: 4}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d := rep.Degraded(); d != 0 {
		t.Fatalf("campaign degraded %d trials:\n%s", d, rep.Render(true))
	}
	if fp := rep.FalsePositives(); fp != 0 {
		t.Fatalf("campaign raised %d false positives:\n%s", fp, rep.Render(true))
	}
	all := func(mech string, kind Kind, want Outcome) {
		t.Helper()
		got := rep.CellOutcomes(mech, kind)
		if got[want] != rep.TrialsPerCell || len(got) != 1 {
			t.Errorf("%s/%s: outcomes %v, want all %s", mech, kind, got, want)
		}
	}
	// Controls run clean everywhere.
	for _, m := range []string{"lmi", "lmi+track", "baggybounds", "gpushield"} {
		all(m, KindControl, OutcomeClean)
		all(m, KindAllocExhaust, OutcomeDetected)
	}
	// Skipped extent nullification: plain LMI architecturally misses the
	// stale pointer, the §XII-C tracker catches it; GPUShield has no
	// temporal safety at all.
	all("lmi", KindFreeSkipNullify, OutcomeMissed)
	all("lmi+track", KindFreeSkipNullify, OutcomeDetected)
	all("gpushield", KindFreeSkipNullify, OutcomeMissed)
	// A mis-rounded tag disowns part of the reservation the victim
	// touches; extent-bearing mechanisms must fault.
	all("lmi", KindAllocMisround, OutcomeDetected)
	all("lmi+track", KindAllocMisround, OutcomeDetected)
	// Retargeting an unmodifiable address bit keeps LMI's metadata
	// self-consistent (architectural miss, silent corruption), while
	// GPUShield's per-buffer bounds table catches the shifted address.
	all("lmi", KindUMFlip, OutcomeMissed)
	all("gpushield", KindUMFlip, OutcomeDetected)
	// Spurious hints must be absorbed by delayed termination.
	all("lmi", KindHintSpurious, OutcomeTolerated)
}

// TestCampaignLegacySeedStability re-derives the original campaign
// enumeration (mechanism-major over the legacy kinds) and requires every
// pre-existing trial to sit at exactly that index with exactly that
// seed: adding the spurious-elide kind must not move a single legacy
// trial, so the pre-existing detection matrix stays byte-identical.
func TestCampaignLegacySeedStability(t *testing.T) {
	const seed, trials = 42, 2
	rep, err := Campaign{Seed: seed, Trials: trials}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for _, d := range mechDefs() {
		for _, k := range legacyKinds() {
			if !d.eligible(k) {
				continue
			}
			for r := 0; r < trials; r++ {
				if i >= len(rep.Trials) {
					t.Fatalf("campaign ran %d trials; legacy enumeration needs more", len(rep.Trials))
				}
				tr := rep.Trials[i]
				if tr.Mech != d.name || tr.Kind != k || tr.Rep != r || tr.Seed != MixSeed(seed, uint64(i)) {
					t.Fatalf("trial %d: got (%s, %s, rep %d, seed %#x), want (%s, %s, rep %d, seed %#x)",
						i, tr.Mech, tr.Kind, tr.Rep, tr.Seed, d.name, k, r, MixSeed(seed, uint64(i)))
				}
				i++
			}
		}
	}
	if i == len(rep.Trials) {
		t.Fatal("campaign enumerated no spurious-elide trials after the legacy block")
	}
	// The appended blocks enumerate in their own fixed order after the
	// legacy matrix: first spurious-elide, then the race kinds. Each
	// must sit at exactly its re-derived index so the seeds of every
	// earlier block stay byte-identical across versions.
	for _, kinds := range [][]Kind{{KindSpuriousElide}, raceKinds()} {
		for _, d := range mechDefs() {
			for _, k := range kinds {
				if !d.eligible(k) {
					continue
				}
				for r := 0; r < trials; r++ {
					if i >= len(rep.Trials) {
						t.Fatalf("campaign ran %d trials; appended-block enumeration needs more", len(rep.Trials))
					}
					tr := rep.Trials[i]
					if tr.Mech != d.name || tr.Kind != k || tr.Rep != r || tr.Seed != MixSeed(seed, uint64(i)) {
						t.Fatalf("trial %d: got (%s, %s, rep %d, seed %#x), want (%s, %s, rep %d, seed %#x)",
							i, tr.Mech, tr.Kind, tr.Rep, tr.Seed, d.name, k, r, MixSeed(seed, uint64(i)))
					}
					i++
				}
			}
		}
	}
	if i != len(rep.Trials) {
		t.Fatalf("campaign ran %d trials beyond the enumerated blocks", len(rep.Trials)-i)
	}
}

// TestSpuriousElideOutcomes: a planted E bit landing on the oob victim's
// out-of-bounds store suppresses the only check that would catch it — a
// guaranteed silent miss with the marker landed past the buffer — while
// landing on an in-bounds access is benign and the designed violation is
// still caught. Both site classes must appear across the repetitions,
// and the kind must stay off the non-hinted mechanisms.
func TestSpuriousElideOutcomes(t *testing.T) {
	rep, err := Campaign{Seed: 9, Trials: 12, Mechs: []string{"lmi"}}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	miss, tol := 0, 0
	for _, tr := range rep.Trials {
		if tr.Kind != KindSpuriousElide {
			continue
		}
		switch tr.Outcome {
		case OutcomeMissed:
			miss++
			if !strings.Contains(tr.Detail, "out-of-bounds store landed") {
				t.Errorf("trial %d: missed without the landed-store observation: %s", tr.Index, tr.Detail)
			}
		case OutcomeTolerated:
			tol++
			if !tr.HasFault {
				t.Errorf("trial %d: tolerated elide should still catch the designed violation: %s",
					tr.Index, tr.Detail)
			}
		default:
			t.Errorf("trial %d: spurious-elide outcome %s (%s), want missed or tolerated",
				tr.Index, tr.Outcome, tr.Detail)
		}
	}
	if miss == 0 || tol == 0 {
		t.Fatalf("seed did not exercise both elide site classes (miss=%d tol=%d); widen Trials", miss, tol)
	}
	inj, err := NewInjector(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range []string{"baggybounds", "gpushield"} {
		for _, k := range inj.EligibleKinds(mech) {
			if k == KindSpuriousElide {
				t.Errorf("%s: spurious-elide eligible without a hinted microcode path", mech)
			}
		}
	}
}

// panicCheckMech panics at the EC hook — a worst-case mechanism
// plug-in bug injected under every trial of a campaign.
type panicCheckMech struct {
	sim.Mechanism
}

func (m panicCheckMech) CheckAccess(a sim.Access) (uint64, uint64, *core.Fault) {
	panic("chaos test: mechanism bug at EC hook")
}

// TestCampaignContainsPanickingMechanism: with a mechanism that panics
// on every memory access, the campaign still completes, classifies the
// affected trials as Degraded, and never lets the panic reach the test
// process.
func TestCampaignContainsPanickingMechanism(t *testing.T) {
	c := Campaign{Seed: 5, Trials: 1, Mechs: []string{"lmi"}}
	c.wrap = func(_ string, m sim.Mechanism) sim.Mechanism {
		return panicCheckMech{Mechanism: m}
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) == 0 {
		t.Fatal("no trials ran")
	}
	if d := rep.Degraded(); d != len(rep.Trials) {
		t.Errorf("degraded %d of %d trials; every trial launches and must hit the panicking hook\n%s",
			d, len(rep.Trials), rep.Render(true))
	}
	for _, tr := range rep.Trials {
		if tr.Outcome == OutcomeDegraded && !strings.Contains(tr.Detail, "panic") {
			t.Errorf("trial %d degraded without panic context: %s", tr.Index, tr.Detail)
		}
	}
}

// TestCampaignCancellation: a cancelled context fails remaining trials
// as Degraded and Run reports the context error, without wedging.
func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Campaign{Seed: 1, Trials: 1, Mechs: []string{"lmi"}}.Run(ctx)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, tr := range rep.Trials {
		if tr.Outcome != OutcomeDegraded {
			t.Fatalf("trial %d ran under a cancelled context: %s", tr.Index, tr.Outcome)
		}
	}
}
