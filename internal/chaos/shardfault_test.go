package chaos

import (
	"testing"
	"time"
)

// TestShardFaultPlanDeterministic: the plan is a pure function of its
// inputs and changes with the seed.
func TestShardFaultPlanDeterministic(t *testing.T) {
	a := ShardFaultPlan(7, 4, 10*time.Second)
	b := ShardFaultPlan(7, 4, 10*time.Second)
	if len(a) != len(b) {
		t.Fatalf("same inputs produced %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := ShardFaultPlan(8, 4, 10*time.Second)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("seeds 7 and 8 produced identical plans; plan is not seeded")
	}
}

// TestShardFaultPlanInvariants walks many seeds and checks the
// structural guarantees the fleet soak depends on: events sorted and
// inside the horizon, every kill paired with a later rejoin of the same
// shard, at most one shard dead at a time (so the last alive shard is
// never killed), and valid shard indices.
func TestShardFaultPlanInvariants(t *testing.T) {
	const horizon = 10 * time.Second
	for seed := uint64(0); seed < 50; seed++ {
		for _, shards := range []int{1, 2, 3, 4, 8} {
			plan := ShardFaultPlan(seed, shards, horizon)
			dead := -1
			var last time.Duration
			kills, rejoins := 0, 0
			for _, f := range plan {
				if f.At < last {
					t.Fatalf("seed %d shards %d: plan not sorted: %v after %v", seed, shards, f.At, last)
				}
				last = f.At
				if f.At < 0 || f.At > horizon || f.At+f.Dur > horizon {
					t.Fatalf("seed %d shards %d: event outside horizon: %v", seed, shards, f)
				}
				switch f.Kind {
				case ShardKill:
					kills++
					if f.Shard < 0 || f.Shard >= shards {
						t.Fatalf("seed %d: kill of invalid shard %d", seed, f.Shard)
					}
					if dead != -1 {
						t.Fatalf("seed %d shards %d: shard %d killed while %d still dead", seed, shards, f.Shard, dead)
					}
					dead = f.Shard
				case ShardRejoin:
					rejoins++
					if f.Shard != dead {
						t.Fatalf("seed %d shards %d: rejoin of %d but %d is dead", seed, shards, f.Shard, dead)
					}
					dead = -1
				case BurstOverload:
					if f.Shard != -1 || f.Dur <= 0 {
						t.Fatalf("seed %d: malformed burst %v", seed, f)
					}
				}
			}
			if dead != -1 {
				t.Fatalf("seed %d shards %d: shard %d never rejoined", seed, shards, dead)
			}
			if shards == 1 && kills != 0 {
				t.Fatalf("seed %d: single-shard fleet scripted a kill", seed)
			}
			if shards >= 2 && (kills < 2 || kills != rejoins) {
				t.Fatalf("seed %d shards %d: %d kills / %d rejoins, want >= 2 and paired", seed, shards, kills, rejoins)
			}
			if len(ShardFaultPlan(seed, shards, 0)) != 0 {
				t.Fatalf("zero horizon must script nothing")
			}
		}
	}
}
