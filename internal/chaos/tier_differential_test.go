package chaos

import (
	"context"
	"regexp"
	"testing"

	"lmi/internal/fastsim"
)

// faultRaceRe matches the schedule-dependent fields of a fault record
// embedded in a trial detail: the hardware location and the faulting
// addresses. When an injected corruption makes every lane of every warp
// fault, which one wins the HaltOnFault race is a property of the
// scheduling model (GTO + cache timing on the cycle tier, in-order
// warps on the compiled tier), not of the mechanism's verdict — the
// fault kind, pc, and violation message must still agree exactly.
var faultRaceRe = regexp.MustCompile(`SM\d+ warp\d+ lane\d+|0x[0-9a-fA-F]+|extent=\d+`)

func normalizeDetail(d string) string {
	return faultRaceRe.ReplaceAllString(d, "*")
}

// TestTierDifferentialChaosCorpus replays the full injection matrix on
// both execution tiers and asserts identical fault verdicts: the same
// Outcome, fault presence, and injection detail for every (mechanism,
// kind, seed) cell. KindOCUMisdecode is the one excluded kind: its
// injector drops pointer checks by a hash of the dynamic call index, so
// which check it sabotages depends on warp scheduling order — the two
// tiers legitimately corrupt different calls. Cycle counts (Cycles,
// FaultCycle, InjectCycle) are timing-model outputs and are not
// compared.
func TestTierDifferentialChaosCorpus(t *testing.T) {
	cycleInj, err := NewInjector(nil)
	if err != nil {
		t.Fatal(err)
	}
	fastInj, err := NewInjector(nil)
	if err != nil {
		t.Fatal(err)
	}
	fastInj.Tier = fastsim.TierCompiled

	trials := 4
	if testing.Short() {
		trials = 2
	}
	cfg := TrialConfig(1)
	ctx := context.Background()
	for _, mech := range cycleInj.Mechanisms() {
		for _, kind := range cycleInj.EligibleKinds(mech) {
			if kind == KindOCUMisdecode {
				continue
			}
			for rep := 0; rep < trials; rep++ {
				seed := MixSeed(0xD1FF, uint64(rep))
				ct, err := cycleInj.RunTrial(ctx, mech, kind, seed, cfg)
				if err != nil {
					t.Fatalf("%s/%s: cycle trial: %v", mech, kind, err)
				}
				ft, err := fastInj.RunTrial(ctx, mech, kind, seed, cfg)
				if err != nil {
					t.Fatalf("%s/%s: compiled trial: %v", mech, kind, err)
				}
				label := string(mech) + "/" + string(kind)
				if ct.Outcome != ft.Outcome {
					t.Errorf("%s seed=%#x: outcome diverges: cycle=%s compiled=%s\ncycle detail: %s\ncompiled detail: %s",
						label, seed, ct.Outcome, ft.Outcome, ct.Detail, ft.Detail)
					continue
				}
				if ct.HasFault != ft.HasFault {
					t.Errorf("%s seed=%#x: fault presence diverges: cycle=%v compiled=%v",
						label, seed, ct.HasFault, ft.HasFault)
				}
				if normalizeDetail(ct.Detail) != normalizeDetail(ft.Detail) {
					t.Errorf("%s seed=%#x: detail diverges:\ncycle:    %s\ncompiled: %s",
						label, seed, ct.Detail, ft.Detail)
				}
			}
		}
	}
}
