package chaos

import (
	"encoding/binary"

	"lmi/internal/ir"
	"lmi/internal/isa"
)

// Victim kernels. They are intentionally tiny and fully deterministic:
// one block of 64 threads over 1 KiB buffers (extent 3 under the
// default codec), with every thread's addresses a pure function of its
// thread ID, so the memory image after a clean run is known in closed
// form and any deviation is attributable to the injection.
const (
	// victimBufBytes is each victim buffer's size: 1 KiB, a native 2^n
	// size class (extent 3), so tagging adds no rounding slack and an
	// extent lowered by one class halves the claimed bounds exactly.
	victimBufBytes = 1024
	// victimThreads is the launch size: one warp pair, enough for the
	// stride pattern to sweep the whole buffer.
	victimThreads = 64
	// victimStride spreads the 64 threads over the full 1 KiB so that
	// any shrink of the claimed bounds is exercised by some thread.
	victimStride = victimBufBytes / victimThreads
	// oobMarker is the word the oob victim stores one past its buffer.
	oobMarker = 0x7A
)

// streamKernel is the clean victim: out[16*i] = in[16*i] + 1 for each
// thread i, byte-stride 16, covering the whole 1 KiB of both buffers.
func streamKernel() *ir.Func {
	b := ir.NewBuilder("chaos_stream")
	in := b.Param(ir.PtrGlobal)
	out := b.Param(ir.PtrGlobal)
	gtid := b.GlobalTID()
	v := b.Load(ir.I32, b.GEP(in, gtid, victimStride, 0), 0)
	b.Store(b.GEP(out, gtid, victimStride, 0), b.Add(v, b.ConstI(ir.I32, 1)), 0)
	return b.Finalize()
}

// oobKernel is the spatial-violation victim: thread 0 stores one word
// past the end of the buffer while every other thread stores in bounds.
// Under intact LMI the hinted address computation trips the OCU and the
// EC faults at the store; the hint/OCU injection kinds corrupt exactly
// that path.
func oobKernel() *ir.Func {
	b := ir.NewBuilder("chaos_oob")
	out := b.Param(ir.PtrGlobal)
	gtid := b.GlobalTID()
	b.If(b.ICmp(isa.CmpEQ, gtid, b.ConstI(ir.I32, 0)), func() {
		b.Store(b.GEP(out, b.ConstI(ir.I32, victimBufBytes/4), 4, 0),
			b.ConstI(ir.I32, oobMarker), 0)
	}, func() {
		b.Store(b.GEP(out, gtid, 4, 0), gtid, 0)
	})
	return b.Finalize()
}

// raceKernel is the synchronization victim: a barrier-separated
// neighbour exchange over shared memory. Phase one stores sh[tid],
// phase two reads sh[tid+1] and folds the value into an atomic
// accumulator at sh[0]. The pristine kernel is provably race-free (the
// static analyzer and the dynamic oracle both agree), and each
// race-injection kind breaks exactly one of its synchronization
// invariants: dropping the BAR collapses the two phases into one epoch,
// perturbing a stride shift makes disjoint index sets collide, and
// demoting the ATOMS to a plain STS turns commuting updates into
// write-write conflicts. Every candidate site of every kind produces at
// least one race pair with statically known instruction addresses.
func raceKernel() *ir.Func {
	b := ir.NewBuilder("chaos_race")
	sh := b.Shared((victimThreads + 1) * 4)
	tid := b.TID()
	b.Store(b.GEP(sh, tid, 4, 0), tid, 0)
	b.Barrier()
	v := b.Load(ir.I32, b.GEP(sh, b.Add(tid, b.ConstI(ir.I32, 1)), 4, 0), 0)
	b.AtomicAdd(sh, v, 0)
	return b.Finalize()
}

// streamInput is the host image of the stream victim's input buffer:
// 32-bit word j holds j.
func streamInput() []byte {
	buf := make([]byte, victimBufBytes)
	for j := 0; j < victimBufBytes/4; j++ {
		binary.LittleEndian.PutUint32(buf[4*j:], uint32(j))
	}
	return buf
}

// streamOutputOK reports whether the stream victim's output buffer holds
// the clean-run image: word 4i = 4i+1 at each thread's slot, zero
// elsewhere.
func streamOutputOK(out []byte) bool {
	if len(out) != victimBufBytes {
		return false
	}
	for j := 0; j < victimBufBytes/4; j++ {
		want := uint32(0)
		if j%(victimStride/4) == 0 {
			want = uint32(j) + 1
		}
		if binary.LittleEndian.Uint32(out[4*j:]) != want {
			return false
		}
	}
	return true
}
