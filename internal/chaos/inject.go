package chaos

import (
	"fmt"

	"lmi/internal/core"
	"lmi/internal/isa"
	"lmi/internal/sim"
)

// Injection primitives: each takes a pristine artefact (tagged pointer,
// compiled program, mechanism) plus the trial's RNG and returns the
// perturbed artefact with a human-readable description of exactly what
// was corrupted, so undetected injections can be enumerated precisely.

// cloneProgram copies a program so its instructions can be mutated
// without touching the campaign's shared compile cache.
func cloneProgram(p *isa.Program) *isa.Program {
	q := *p
	q.Instrs = append([]isa.Instr(nil), p.Instrs...)
	q.StackBuffers = append([]isa.StackBuffer(nil), p.StackBuffers...)
	return &q
}

// HintedSites returns the instruction indices carrying the A hint — the
// candidate sites for a hint-drop injection. Empty for non-LMI
// compilations.
func HintedSites(p *isa.Program) []int {
	var hinted []int
	for i := range p.Instrs {
		if p.Instrs[i].Hint.A {
			hinted = append(hinted, i)
		}
	}
	return hinted
}

// DropHintAt returns a copy of p with the A/S microcode hints cleared on
// instruction idx — the OCU never sees that pointer operation. The
// static linter's negative corpus uses this deterministic form; the
// campaign picks the site by RNG.
func DropHintAt(p *isa.Program, idx int) *isa.Program {
	q := cloneProgram(p)
	q.Instrs[idx].Hint = isa.Hint{}
	return q
}

// dropHint clears the A/S microcode hints on one randomly chosen hinted
// instruction — the OCU never sees that pointer operation. It returns
// nil when the program carries no hints (non-LMI compilation).
func dropHint(p *isa.Program, r *rng) (*isa.Program, string) {
	hinted := HintedSites(p)
	if len(hinted) == 0 {
		return nil, ""
	}
	idx := hinted[r.intn(len(hinted))]
	return DropHintAt(p, idx), fmt.Sprintf("A hint cleared on instr %d (%s)", idx, p.Instrs[idx].Op)
}

// spuriousHintOps are the plain integer-ALU opcodes a spurious
// Activation hint can be planted on: the set the simulator's shared
// integer path executes (predicate-writing SETP and SEL are excluded —
// their results never reach the OCU datapath).
var spuriousHintOps = map[isa.Opcode]bool{
	isa.IADD: true, isa.IADD3: true, isa.IMUL: true, isa.IMAD: true,
	isa.IMNMX: true, isa.SHL: true, isa.SHR: true,
	isa.AND: true, isa.OR: true, isa.XOR: true, isa.MOV: true,
}

// SpuriousSites returns the indices of unhinted integer-ALU
// instructions a spurious Activation hint can be planted on — the
// candidate sites for the spurious-hint injection.
func SpuriousSites(p *isa.Program) []int {
	var cands []int
	for i := range p.Instrs {
		if !p.Instrs[i].Hint.A && spuriousHintOps[p.Instrs[i].Op] {
			cands = append(cands, i)
		}
	}
	return cands
}

// PlantSpuriousHintAt returns a copy of p with the Activation hint set
// on instruction idx, making the OCU treat a data value as a pointer.
// The static linter's negative corpus uses this deterministic form.
func PlantSpuriousHintAt(p *isa.Program, idx int) *isa.Program {
	q := cloneProgram(p)
	q.Instrs[idx].Hint = isa.Hint{A: true}
	return q
}

// spuriousHint sets the Activation hint on one randomly chosen unhinted
// integer instruction, making the OCU treat a data value as a pointer.
// Delayed termination should absorb this without a false positive.
func spuriousHint(p *isa.Program, r *rng) (*isa.Program, string) {
	cands := SpuriousSites(p)
	if len(cands) == 0 {
		return nil, ""
	}
	idx := cands[r.intn(len(cands))]
	return PlantSpuriousHintAt(p, idx), fmt.Sprintf("spurious A hint set on instr %d (%s)", idx, p.Instrs[idx].Op)
}

// ElideSites returns the indices of the memory instructions an E (elide)
// hint can legally be planted on — the candidate sites for the
// spurious-elide injection.
func ElideSites(p *isa.Program) []int {
	var cands []int
	for i := range p.Instrs {
		switch p.Instrs[i].Op {
		case isa.LDG, isa.STG, isa.LDL, isa.STL, isa.ATOMG:
			cands = append(cands, i)
		}
	}
	return cands
}

// PlantSpuriousElideAt returns a copy of p with the E hint set on
// instruction idx, making the LSU skip that access's extent check
// without any static proof backing the elision. The lint elide audit's
// negative corpus uses this deterministic form; the campaign picks the
// site by RNG.
func PlantSpuriousElideAt(p *isa.Program, idx int) *isa.Program {
	q := cloneProgram(p)
	q.Instrs[idx].Hint.E = true
	return q
}

// PlantSpecMutationAt returns a copy of p with instruction idx's guard
// sense inverted — a minimal, always-valid mutation of a specialized
// residual that the certificate replay cannot have produced. The lint
// specialize audit's negative corpus uses it to pin a tampered
// residual to the exact instruction.
func PlantSpecMutationAt(p *isa.Program, idx int) *isa.Program {
	q := cloneProgram(p)
	q.Instrs[idx].PredNeg = !q.Instrs[idx].PredNeg
	return q
}

// spuriousElide sets the E hint on one randomly chosen memory
// instruction. Landing on the oob victim's out-of-bounds store this
// suppresses the only check that would catch it; landing on an in-bounds
// access it is architecturally benign. It returns nil when the program
// has no memory instructions.
func spuriousElide(p *isa.Program, r *rng) (*isa.Program, string) {
	cands := ElideSites(p)
	if len(cands) == 0 {
		return nil, ""
	}
	idx := cands[r.intn(len(cands))]
	return PlantSpuriousElideAt(p, idx), fmt.Sprintf("spurious E hint set on instr %d (%s)", idx, p.Instrs[idx].Op)
}

// BarrierSites returns the instruction indices of unpredicated BAR
// instructions — the candidate sites for the drop-barrier injection.
func BarrierSites(p *isa.Program) []int {
	var bars []int
	for i := range p.Instrs {
		if p.Instrs[i].Op == isa.BAR && p.Instrs[i].Pred == isa.PT && !p.Instrs[i].PredNeg {
			bars = append(bars, i)
		}
	}
	return bars
}

// DropBarrierAt returns a copy of p with the BAR at instruction idx
// replaced by a NOP: the block-wide synchronization point disappears
// but every other instruction keeps its address, so the static
// analyzer's diagnostics and the dynamic oracle's records stay directly
// comparable against the mutated program.
func DropBarrierAt(p *isa.Program, idx int) *isa.Program {
	q := cloneProgram(p)
	q.Instrs[idx] = isa.Instr{Op: isa.NOP, Pred: p.Instrs[idx].Pred}
	return q
}

// dropBarrier removes one randomly chosen barrier. It returns nil when
// the program has no unpredicated BAR.
func dropBarrier(p *isa.Program, r *rng) (*isa.Program, string) {
	bars := BarrierSites(p)
	if len(bars) == 0 {
		return nil, ""
	}
	idx := bars[r.intn(len(bars))]
	return DropBarrierAt(p, idx), fmt.Sprintf("BAR at instr %d replaced by NOP", idx)
}

// StrideSites returns the indices of SHL-by-2 instructions — the
// element-index-to-byte-offset scalings of 4-byte accesses, and the
// candidate sites for the stride-perturbation injection. The LMI
// pointer-tagging shifts use the extent-field width and never match.
func StrideSites(p *isa.Program) []int {
	var cands []int
	for i := range p.Instrs {
		if p.Instrs[i].Op == isa.SHL && p.Instrs[i].HasImm && p.Instrs[i].Imm == 2 {
			cands = append(cands, i)
		}
	}
	return cands
}

// PerturbStrideAt returns a copy of p with the SHL immediate at
// instruction idx lowered from 2 to 1: a 4-byte-stride index set
// becomes a 2-byte-stride one, so accesses that were provably disjoint
// across threads now overlap.
func PerturbStrideAt(p *isa.Program, idx int) *isa.Program {
	q := cloneProgram(p)
	q.Instrs[idx].Imm = 1
	return q
}

// perturbStride halves one randomly chosen address-scaling shift. It
// returns nil when the program has no SHL-by-2.
func perturbStride(p *isa.Program, r *rng) (*isa.Program, string) {
	cands := StrideSites(p)
	if len(cands) == 0 {
		return nil, ""
	}
	idx := cands[r.intn(len(cands))]
	return PerturbStrideAt(p, idx), fmt.Sprintf("SHL imm 2 -> 1 on instr %d (stride collision)", idx)
}

// AtomicSharedSites returns the indices of ATOMS instructions — the
// candidate sites for the atomic-demotion injection.
func AtomicSharedSites(p *isa.Program) []int {
	var cands []int
	for i := range p.Instrs {
		if p.Instrs[i].Op == isa.ATOMS {
			cands = append(cands, i)
		}
	}
	return cands
}

// DemoteAtomicAt returns a copy of p with the ATOMS at instruction idx
// demoted to a plain STS: the read-modify-write loses its atomicity, so
// updates that commuted under ATOMS become racing plain writes. ATOMS
// and STS share the operand layout (Src[0] address, Src[1] data), so
// only the opcode and the now-meaningless destination change.
func DemoteAtomicAt(p *isa.Program, idx int) *isa.Program {
	q := cloneProgram(p)
	q.Instrs[idx].Op = isa.STS
	q.Instrs[idx].Dst = isa.RZ
	return q
}

// demoteAtomic demotes one randomly chosen shared-memory atomic. It
// returns nil when the program has no ATOMS.
func demoteAtomic(p *isa.Program, r *rng) (*isa.Program, string) {
	cands := AtomicSharedSites(p)
	if len(cands) == 0 {
		return nil, ""
	}
	idx := cands[r.intn(len(cands))]
	return DemoteAtomicAt(p, idx), fmt.Sprintf("ATOMS demoted to STS on instr %d", idx)
}

// StripNullification returns a copy of p with the SHL/SHR
// extent-nullification pair removed after every FREE — the program-level
// form of the campaign's skipped-nullification fault (§VIII), leaving
// the freed pointer's extent live in its register. Branch targets are
// remapped around the removed instructions. Returns nil when the
// program contains no nullification sequence (non-LMI compilation or no
// FREE).
func StripNullification(p *isa.Program) *isa.Program {
	keep := make([]bool, len(p.Instrs))
	for i := range keep {
		keep[i] = true
	}
	found := false
	for i := 0; i+2 < len(p.Instrs); i++ {
		in := &p.Instrs[i]
		if in.Op != isa.FREE {
			continue
		}
		r := in.Src[0]
		shl, shr := &p.Instrs[i+1], &p.Instrs[i+2]
		if shl.Op == isa.SHL && shl.HasImm && shl.Imm == int32(core.ExtentFieldBits) &&
			shl.Dst == r && shl.Src[0] == r &&
			shr.Op == isa.SHR && shr.HasImm && shr.Imm == int32(core.ExtentFieldBits) &&
			shr.Dst == r && shr.Src[0] == r {
			keep[i+1], keep[i+2] = false, false
			found = true
		}
	}
	if !found {
		return nil
	}
	newIdx := make([]int32, len(p.Instrs)+1)
	n := int32(0)
	for i := range p.Instrs {
		newIdx[i] = n
		if keep[i] {
			n++
		}
	}
	newIdx[len(p.Instrs)] = n
	q := cloneProgram(p)
	q.Instrs = q.Instrs[:0]
	for i := range p.Instrs {
		if !keep[i] {
			continue
		}
		in := p.Instrs[i]
		if in.Op == isa.BRA || in.Op == isa.SSY {
			in.Target = newIdx[in.Target]
		}
		q.Instrs = append(q.Instrs, in)
	}
	return q
}

// corruptExtentBit flips one bit of the extent field (bits 63:59) in a
// live tagged pointer value.
func corruptExtentBit(val uint64, r *rng) (uint64, string) {
	bit := uint(core.ExtentShift + r.intn(core.ExtentFieldBits))
	nv := val ^ uint64(1)<<bit
	return nv, fmt.Sprintf("extent bit %d flipped (extent %d -> %d)",
		bit, core.Pointer(val).Extent(), core.Pointer(nv).Extent())
}

// corruptUMBit flips one unmodifiable address bit of a tagged pointer:
// above the 1 KiB victim's modifiable field (bits 9:0) and below
// GPUShield's buffer-ID field (bits 58:48), so for every mechanism the
// flip retargets the address while leaving its metadata self-consistent.
func corruptUMBit(val uint64, r *rng) (uint64, string) {
	bit := uint(10 + r.intn(38-10+1))
	return val ^ uint64(1)<<bit, fmt.Sprintf("unmodifiable address bit %d flipped", bit)
}

// misroundTag emulates a mis-rounding allocator: the reservation keeps
// its true size but the pointer's metadata claims a class one or two
// steps smaller, as if the size-class computation was corrupted during
// pointer generation. Returns the input unchanged (empty description)
// when the buffer is already in the smallest class.
func misroundTag(val uint64, r *rng) (uint64, string) {
	p := core.Pointer(val)
	e := p.Extent()
	if e <= 1 {
		return val, ""
	}
	down := core.Extent(1 + r.intn(2))
	if down >= e {
		down = e - 1
	}
	ne := e - down
	return uint64(p.WithExtent(ne)), fmt.Sprintf(
		"tag mis-rounded extent %d -> %d (reserved %d B, metadata claims %d B)",
		e, ne, core.DefaultCodec.SizeForExtent(e), core.DefaultCodec.SizeForExtent(ne))
}

// ocuMisdecode wraps a mechanism with a faulty OCU decoder: each
// CheckPointerOp invocation is skipped with probability 1/8, decided by
// a hash of the trial seed and the call index, so the same seed skips
// the same checks regardless of worker count. The wrapper watches the
// EC hook's cycle stamps to record the (approximate) cycle of the first
// skipped check, giving the campaign an injection time for its
// detection-latency measurement.
type ocuMisdecode struct {
	sim.Mechanism
	seed uint64

	calls       uint64
	skips       uint64
	lastCycle   uint64
	injectCycle uint64
	injected    bool
}

// CheckPointerOp implements sim.Mechanism with the decode fault.
func (o *ocuMisdecode) CheckPointerOp(in, out uint64) (uint64, uint64) {
	i := o.calls
	o.calls++
	if splitmix64(o.seed^splitmix64(i+1))%8 == 0 {
		o.skips++
		if !o.injected {
			o.injected = true
			o.injectCycle = o.lastCycle
		}
		// Misdecode: the hint is ignored — no check, no OCU latency.
		return out, 0
	}
	return o.Mechanism.CheckPointerOp(in, out)
}

// CheckAccess implements sim.Mechanism, recording the current cycle.
func (o *ocuMisdecode) CheckAccess(a sim.Access) (uint64, uint64, *core.Fault) {
	o.lastCycle = a.Cycle
	return o.Mechanism.CheckAccess(a)
}
