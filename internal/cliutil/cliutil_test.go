package cliutil

import (
	"flag"
	"io"
	"strings"
	"testing"
)

// parserFor mirrors how each command declares the flags under test, so
// the table below exercises the real flag shapes: strict minimums
// (-sms, -trials) and auto-zero pools (-jobs).
func parserFor(t *testing.T, args []string) (*flag.FlagSet, []Check) {
	t.Helper()
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	sms := fs.Int("sms", 4, "")
	trials := fs.Int("trials", 6, "")
	jobs := fs.Int("jobs", 0, "")
	shards := fs.Int("shards", 1, "")
	logBuffer := fs.Int("log-buffer", 256, "")
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parsing %v: %v", args, err)
	}
	return fs, []Check{
		{Name: "sms", Value: *sms},
		{Name: "trials", Value: *trials},
		{Name: "jobs", Value: *jobs, AutoZero: true},
		{Name: "shards", Value: *shards},
		{Name: "log-buffer", Value: *logBuffer},
	}
}

// TestValidate is the table over the flag parsers: every tool shares
// these shapes, so one table pins the uniform behaviour.
func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // "" = valid
	}{
		{"defaults", nil, ""},
		{"explicit valid", []string{"-sms", "8", "-trials", "3", "-jobs", "4"}, ""},
		{"sms zero", []string{"-sms", "0"}, "invalid -sms 0: must be >= 1"},
		{"sms negative", []string{"-sms", "-2"}, "invalid -sms -2: must be >= 1"},
		{"trials zero", []string{"-trials", "0"}, "invalid -trials 0: must be >= 1"},
		{"trials negative", []string{"-trials", "-1"}, "invalid -trials -1: must be >= 1"},
		{"jobs negative", []string{"-jobs", "-3"}, "invalid -jobs -3: must be >= 1"},
		{"jobs explicit zero", []string{"-jobs", "0"}, "invalid -jobs 0: must be >= 1"},
		{"jobs default zero is auto", nil, ""},
		{"shards valid", []string{"-shards", "4"}, ""},
		{"shards zero", []string{"-shards", "0"}, "invalid -shards 0: must be >= 1"},
		{"shards negative", []string{"-shards", "-2"}, "invalid -shards -2: must be >= 1"},
		{"log-buffer valid", []string{"-log-buffer", "1"}, ""},
		{"log-buffer zero", []string{"-log-buffer", "0"}, "invalid -log-buffer 0: must be >= 1"},
		{"log-buffer negative", []string{"-log-buffer", "-8"}, "invalid -log-buffer -8: must be >= 1"},
		{"first violation wins", []string{"-sms", "0", "-trials", "0"}, "invalid -sms 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs, checks := parserFor(t, tc.args)
			err := Validate("tool", fs, checks...)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("args %v: unexpected usage error %v", tc.args, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("args %v: accepted, want error containing %q", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("args %v: error %q, want it to contain %q", tc.args, err, tc.wantErr)
			}
			if !strings.HasPrefix(err.Error(), "tool: ") {
				t.Fatalf("args %v: error %q lacks the uniform tool prefix", tc.args, err)
			}
		})
	}
}

// TestValidateEnum is the table over the enum flag shapes (-elide, the
// lmi-compile/lmi-lint modes): legal values pass, anything else is a
// uniform usage error naming the allowed set.
func TestValidateEnum(t *testing.T) {
	cases := []struct {
		name    string
		checks  []EnumCheck
		wantErr string // "" = valid
	}{
		{"elide off", []EnumCheck{{Name: "elide", Value: "off", Allowed: []string{"off", "on"}}}, ""},
		{"elide on", []EnumCheck{{Name: "elide", Value: "on", Allowed: []string{"off", "on"}}}, ""},
		{"elide typo", []EnumCheck{{Name: "elide", Value: "yes", Allowed: []string{"off", "on"}}},
			`invalid -elide "yes": must be off | on`},
		{"elide empty", []EnumCheck{{Name: "elide", Value: "", Allowed: []string{"off", "on"}}},
			`invalid -elide "": must be off | on`},
		{"mode valid", []EnumCheck{{Name: "mode", Value: "lmi", Allowed: []string{"base", "lmi"}}}, ""},
		{"mode unknown", []EnumCheck{{Name: "mode", Value: "fast", Allowed: []string{"base", "lmi"}}},
			`invalid -mode "fast": must be base | lmi`},
		{"first violation wins", []EnumCheck{
			{Name: "mode", Value: "x", Allowed: []string{"base", "lmi"}},
			{Name: "elide", Value: "y", Allowed: []string{"off", "on"}},
		}, "invalid -mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateEnum("tool", tc.checks...)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected usage error %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q, want it to contain %q", err, tc.wantErr)
			}
			if !strings.HasPrefix(err.Error(), "tool: ") {
				t.Fatalf("error %q lacks the uniform tool prefix", err)
			}
		})
	}
}

// TestValidateShapes is the table over the contract-shape flag
// (lmi-compile -contract): well-formed key=value lists pass, malformed
// entries are uniform usage errors (the exit-2 path).
func TestValidateShapes(t *testing.T) {
	keys := []string{"n", "nmin", "nmax", "block", "grid"}
	cases := []struct {
		name    string
		checks  []ShapeCheck
		wantErr string // "" = valid
	}{
		{"empty is no overrides", []ShapeCheck{{Name: "contract", Value: "", Keys: keys}}, ""},
		{"single pin", []ShapeCheck{{Name: "contract", Value: "n=4096", Keys: keys}}, ""},
		{"list with spaces", []ShapeCheck{{Name: "contract", Value: " nmin=1 , nmax=65536 ", Keys: keys}}, ""},
		{"negative value", []ShapeCheck{{Name: "contract", Value: "grid=-1", Keys: keys}}, ""},
		{"missing equals", []ShapeCheck{{Name: "contract", Value: "n4096", Keys: keys}},
			`invalid -contract: "n4096" is not key=value`},
		{"unknown key", []ShapeCheck{{Name: "contract", Value: "warp=32", Keys: keys}},
			`invalid -contract: unknown key "warp": must be n | nmin | nmax | block | grid`},
		{"non-integer value", []ShapeCheck{{Name: "contract", Value: "n=lots", Keys: keys}},
			`invalid -contract: n="lots": value is not an integer`},
		{"bad entry after good", []ShapeCheck{{Name: "contract", Value: "n=1,block=", Keys: keys}},
			`invalid -contract: block="": value is not an integer`},
		{"first violation wins", []ShapeCheck{
			{Name: "contract", Value: "oops", Keys: keys},
			{Name: "other", Value: "also-bad", Keys: keys},
		}, "invalid -contract"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateShapes("tool", tc.checks...)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected usage error %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q, want it to contain %q", err, tc.wantErr)
			}
			if !strings.HasPrefix(err.Error(), "tool: ") {
				t.Fatalf("error %q lacks the uniform tool prefix", err)
			}
		})
	}
}

// TestValidateKeys is the table over the key-material flag shapes
// (-key, -pub, -bundle-pub): empty defers to the environment unless
// Required, @path defers to the file read, and a hex literal must
// decode to exactly the key length.
func TestValidateKeys(t *testing.T) {
	hex32 := strings.Repeat("ab", 32)
	cases := []struct {
		name    string
		checks  []KeyCheck
		wantErr string // "" = valid
	}{
		{"empty defers to env", []KeyCheck{{Name: "key", Value: "", Bytes: 32}}, ""},
		{"empty but required", []KeyCheck{{Name: "bundle-pub", Value: "", Bytes: 32, Required: true}},
			"missing required -bundle-pub"},
		{"file reference", []KeyCheck{{Name: "key", Value: "@seed.hex", Bytes: 32}}, ""},
		{"bare at sign", []KeyCheck{{Name: "key", Value: "@", Bytes: 32}},
			`invalid -key "@": @ needs a file path`},
		{"exact hex literal", []KeyCheck{{Name: "pub", Value: hex32, Bytes: 32}}, ""},
		{"not hex", []KeyCheck{{Name: "key", Value: "not-a-key", Bytes: 32}},
			"invalid -key: not a hex key or @path"},
		{"odd-length hex", []KeyCheck{{Name: "key", Value: "abc", Bytes: 32}},
			"invalid -key: not a hex key or @path"},
		{"short hex", []KeyCheck{{Name: "pub", Value: "abcd", Bytes: 32}},
			"invalid -pub: 2 key bytes, want 32"},
		{"long hex", []KeyCheck{{Name: "pub", Value: hex32 + "ff", Bytes: 32}},
			"invalid -pub: 33 key bytes, want 32"},
		{"first violation wins", []KeyCheck{
			{Name: "key", Value: "zz", Bytes: 32},
			{Name: "pub", Value: "yy", Bytes: 32},
		}, "invalid -key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateKeys("tool", tc.checks...)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected usage error %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q, want it to contain %q", err, tc.wantErr)
			}
			if !strings.HasPrefix(err.Error(), "tool: ") {
				t.Fatalf("error %q lacks the uniform tool prefix", err)
			}
		})
	}
}

// TestErrorf: hand-rolled validations share the same prefix shape.
func TestErrorf(t *testing.T) {
	err := Errorf("lmi-lint", "need -all or -bench")
	if err.Error() != "lmi-lint: need -all or -bench" {
		t.Fatalf("Errorf = %q", err)
	}
}
