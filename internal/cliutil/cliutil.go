// Package cliutil gives the lmi commands one uniform flag-validation
// vocabulary, so `-jobs -3`, `-sms 0`, or `-trials -1` fail the same
// way everywhere — a usage error on stderr and exit status 2 — instead
// of each tool misbehaving (or panicking deep in the simulator) in its
// own way.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

// Check is one integer flag whose value must be at least 1.
type Check struct {
	// Name is the flag name without the dash.
	Name string
	// Value is the parsed value.
	Value int
	// AutoZero marks flags (the -jobs family) whose zero value is a
	// documented "pick automatically" sentinel: the check then only
	// fires when the user passed the flag explicitly.
	AutoZero bool
}

// Validate applies the checks against a parsed FlagSet and returns the
// first violation as a uniform usage error (nil when everything is in
// range). tool prefixes the message; fs tells explicit flags from
// untouched defaults.
func Validate(tool string, fs *flag.FlagSet, checks ...Check) error {
	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	for _, c := range checks {
		if c.Value >= 1 {
			continue
		}
		if c.AutoZero && !explicit[c.Name] {
			continue
		}
		return fmt.Errorf("%s: invalid -%s %d: must be >= 1", tool, c.Name, c.Value)
	}
	return nil
}

// EnumCheck is one string flag whose value must be in a fixed set
// (the -mode / -elide family).
type EnumCheck struct {
	// Name is the flag name without the dash.
	Name string
	// Value is the parsed value.
	Value string
	// Allowed lists the legal values in display order.
	Allowed []string
}

// ValidateEnum applies the enum checks and returns the first violation
// as a uniform usage error (nil when every value is in its set).
func ValidateEnum(tool string, checks ...EnumCheck) error {
	for _, c := range checks {
		ok := false
		for _, a := range c.Allowed {
			if c.Value == a {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("%s: invalid -%s %q: must be %s",
				tool, c.Name, c.Value, strings.Join(c.Allowed, " | "))
		}
	}
	return nil
}

// ValidateEnumOrExit is the main() entry point for enum flags: validate,
// and on violation print the uniform usage error and exit 2.
func ValidateEnumOrExit(tool string, checks ...EnumCheck) {
	if err := ValidateEnum(tool, checks...); err != nil {
		os.Exit(Usage(tool, err))
	}
}

// Usage prints a uniform usage error for tool and returns exit status
// 2 (the conventional flag-error status), leaving the exit itself to
// the caller so tests can intercept it.
func Usage(tool string, err error) int {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	fmt.Fprintf(os.Stderr, "run '%s -h' for usage\n", tool)
	return 2
}

// ValidateOrExit is the main() entry point: validate, and on violation
// print the uniform usage error and exit 2.
func ValidateOrExit(tool string, fs *flag.FlagSet, checks ...Check) {
	if err := Validate(tool, fs, checks...); err != nil {
		os.Exit(Usage(tool, err))
	}
}

// Errorf builds a tool-prefixed usage error for conditions that are
// not simple minimum checks (missing required flags, unknown enum
// values), so hand-rolled validations render identically.
func Errorf(tool, format string, args ...any) error {
	return fmt.Errorf("%s: %s", tool, fmt.Sprintf(format, args...))
}
