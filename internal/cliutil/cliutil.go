// Package cliutil gives the lmi commands one uniform flag-validation
// vocabulary, so `-jobs -3`, `-sms 0`, or `-trials -1` fail the same
// way everywhere — a usage error on stderr and exit status 2 — instead
// of each tool misbehaving (or panicking deep in the simulator) in its
// own way.
package cliutil

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Check is one integer flag whose value must be at least 1.
type Check struct {
	// Name is the flag name without the dash.
	Name string
	// Value is the parsed value.
	Value int
	// AutoZero marks flags (the -jobs family) whose zero value is a
	// documented "pick automatically" sentinel: the check then only
	// fires when the user passed the flag explicitly.
	AutoZero bool
}

// Validate applies the checks against a parsed FlagSet and returns the
// first violation as a uniform usage error (nil when everything is in
// range). tool prefixes the message; fs tells explicit flags from
// untouched defaults.
func Validate(tool string, fs *flag.FlagSet, checks ...Check) error {
	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	for _, c := range checks {
		if c.Value >= 1 {
			continue
		}
		if c.AutoZero && !explicit[c.Name] {
			continue
		}
		return fmt.Errorf("%s: invalid -%s %d: must be >= 1", tool, c.Name, c.Value)
	}
	return nil
}

// EnumCheck is one string flag whose value must be in a fixed set
// (the -mode / -elide family).
type EnumCheck struct {
	// Name is the flag name without the dash.
	Name string
	// Value is the parsed value.
	Value string
	// Allowed lists the legal values in display order.
	Allowed []string
}

// ValidateEnum applies the enum checks and returns the first violation
// as a uniform usage error (nil when every value is in its set).
func ValidateEnum(tool string, checks ...EnumCheck) error {
	for _, c := range checks {
		ok := false
		for _, a := range c.Allowed {
			if c.Value == a {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("%s: invalid -%s %q: must be %s",
				tool, c.Name, c.Value, strings.Join(c.Allowed, " | "))
		}
	}
	return nil
}

// KeyCheck is one key-material flag (the -key / -pub family): its
// value is empty (fall back to the environment, unless Required), an
// @path file reference (read later, at use), or a hex literal that
// must decode to exactly Bytes bytes.
type KeyCheck struct {
	// Name is the flag name without the dash.
	Name string
	// Value is the parsed value.
	Value string
	// Bytes is the required decoded length of a hex literal.
	Bytes int
	// Required rejects an empty value (tools with no env fallback).
	Required bool
}

// ValidateKeys applies the key checks and returns the first violation
// as a uniform usage error. It validates flag syntax only — whether an
// @path file exists or an env fallback is set is the key parser's
// business, at use time.
func ValidateKeys(tool string, checks ...KeyCheck) error {
	for _, c := range checks {
		switch {
		case c.Value == "":
			if c.Required {
				return fmt.Errorf("%s: missing required -%s", tool, c.Name)
			}
		case strings.HasPrefix(c.Value, "@"):
			if len(c.Value) == 1 {
				return fmt.Errorf("%s: invalid -%s %q: @ needs a file path", tool, c.Name, c.Value)
			}
		default:
			raw, err := hex.DecodeString(c.Value)
			if err != nil {
				return fmt.Errorf("%s: invalid -%s: not a hex key or @path", tool, c.Name)
			}
			if len(raw) != c.Bytes {
				return fmt.Errorf("%s: invalid -%s: %d key bytes, want %d", tool, c.Name, len(raw), c.Bytes)
			}
		}
	}
	return nil
}

// ShapeCheck is one contract-shape flag (the -contract family): a
// comma-separated "key=value" list whose keys must come from a fixed
// set and whose values must be integers. Like ValidateKeys it polices
// flag syntax only — semantic constraints (count-range sanity,
// coverage under the general contract) belong to the shape consumer.
type ShapeCheck struct {
	// Name is the flag name without the dash.
	Name string
	// Value is the parsed value ("" means no overrides: always valid).
	Value string
	// Keys lists the legal override keys in display order.
	Keys []string
}

// ValidateShapes applies the shape checks and returns the first
// violation as a uniform usage error (nil when every list parses).
func ValidateShapes(tool string, checks ...ShapeCheck) error {
	for _, c := range checks {
		if strings.TrimSpace(c.Value) == "" {
			continue
		}
		for _, part := range strings.Split(c.Value, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
			if !ok {
				return fmt.Errorf("%s: invalid -%s: %q is not key=value", tool, c.Name, strings.TrimSpace(part))
			}
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			known := false
			for _, a := range c.Keys {
				if k == a {
					known = true
					break
				}
			}
			if !known {
				return fmt.Errorf("%s: invalid -%s: unknown key %q: must be %s",
					tool, c.Name, k, strings.Join(c.Keys, " | "))
			}
			if _, err := strconv.ParseInt(v, 10, 64); err != nil {
				return fmt.Errorf("%s: invalid -%s: %s=%q: value is not an integer", tool, c.Name, k, v)
			}
		}
	}
	return nil
}

// Usage prints a uniform usage error for tool and returns exit status
// 2 (the conventional flag-error status), leaving the exit itself to
// the caller so tests can intercept it — and so no os.Exit hides in
// library code (the repository invariant vetnopanic enforces).
func Usage(tool string, err error) int {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	fmt.Fprintf(os.Stderr, "run '%s -h' for usage\n", tool)
	return 2
}

// Errorf builds a tool-prefixed usage error for conditions that are
// not simple minimum checks (missing required flags, unknown enum
// values), so hand-rolled validations render identically.
func Errorf(tool, format string, args ...any) error {
	return fmt.Errorf("%s: %s", tool, fmt.Sprintf(format, args...))
}
