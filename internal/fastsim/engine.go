package fastsim

import (
	"context"
	"fmt"
	"math/bits"
	"runtime/debug"

	"lmi/internal/alloc"
	"lmi/internal/core"
	"lmi/internal/isa"
	"lmi/internal/mem"
	"lmi/internal/sim"
)

// simtEntry is one SIMT reconvergence-stack entry (identical to the
// cycle simulator's).
type simtEntry struct {
	pc, rpc int32
	mask    uint32
}

// fwarp is one warp's functional execution state on the compiled tier.
type fwarp struct {
	globalID int
	warpIdx  int
	lanes    int

	launchMask uint32
	// rf is the warp's register file, one contiguous block of nregs
	// registers per lane (lane l's register r lives at l*nregs+r).
	// Closures hoist rf into a local before their lane sweep, so the
	// per-lane cost is pure indexing — no slice-header loads.
	rf    []uint64
	nregs int
	preds [8]uint32 // predicate files as lane bitmasks; preds[PT] = launchMask
	locals     []*mem.AddrSpace
	shared     *mem.AddrSpace // the block's shared memory

	stack      []simtEntry
	pendingSSY int32
	exited     uint32

	atBarrier bool
	done      bool

	// vtime is the warp's deterministic virtual-time estimate within its
	// block: one unit per issued instruction plus memory/heap/OCU
	// latency estimates. It feeds the Cycles estimate and fault
	// timestamps; it is not part of the cross-tier functional
	// projection.
	vtime uint64
	// icount counts issued warp instructions; it bounds runaway warps
	// (the compiled tier's Config.MaxCycles analogue — a warp issues at
	// most one instruction per cycle, so a warp exceeding MaxCycles
	// instructions would necessarily exceed MaxCycles cycles too).
	icount uint64
	// sinceProg counts instructions since the last observable-progress
	// event (memory, heap, barrier, exit) for the no-progress watchdog.
	sinceProg uint64

	lineBuf []uint64 // scratch for per-access line dedup (timing estimate)
}

// syncTop pops reconverged or fully-exited stack entries and reports
// whether the warp still has work (mirrors the cycle simulator).
func (w *fwarp) syncTop() bool {
	for {
		if len(w.stack) == 0 {
			w.done = true
			return false
		}
		top := &w.stack[len(w.stack)-1]
		if top.mask&^w.exited == 0 {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		if len(w.stack) > 1 && top.pc == top.rpc {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		return true
	}
}

// engine is the transient state of one compiled-tier kernel execution.
type engine struct {
	ctx      context.Context
	ctxArmed bool
	dev      *sim.Device
	c        *Compiled
	cfg      *sim.Config
	mech     sim.Mechanism
	global   *mem.AddrSpace
	heap     *alloc.DeviceHeap
	cbank    *mem.AddrSpace
	tracer   sim.Tracer

	grid, bdim, gridX, bdimX int
	ctaid                    int
	smID                     int

	stats  sim.KernelStats
	halted bool
	runErr error

	// race is the launch's dynamic race oracle and shadow the current
	// block's per-epoch state (nil when Config.RaceOracle is off).
	// Closures are cached across launches, so the memory closure branches
	// on shadow at run time rather than compile time.
	race   *sim.RaceOracle
	shadow *sim.BlockShadow

	noProg    uint64 // watchdog no-progress bound (instructions)
	maxInstrs uint64 // per-warp instruction budget (MaxCycles analogue)
	tick      uint64 // global instruction counter for ctx polling

	// memInstrs is the per-opcode executed-memory-instruction counter,
	// array-backed so the hot path avoids a map update per warp memory
	// instruction; it is folded into stats.MemInstrs once at launch end.
	memInstrs [256]uint64

	// blockBase is the current block's SM-timeline offset; smTime
	// accumulates per-SM block time for the Cycles estimate.
	blockBase uint64
	smTime    []uint64

	traceEv sim.TraceEvent
}

// Launch runs the compiled kernel to completion with a 1-D grid.
func (c *Compiled) Launch(dev *sim.Device, gridDim, blockDim int, params []uint64) (*sim.KernelStats, error) {
	return c.Launch2DCtx(context.Background(), dev, gridDim, 1, blockDim, 1, params)
}

// LaunchCtx is Launch bounded by a context: cancellation is observed at
// the instruction-polling cadence and aborts with a *sim.ContextError,
// exactly like the cycle tier.
func (c *Compiled) LaunchCtx(ctx context.Context, dev *sim.Device, gridDim, blockDim int, params []uint64) (*sim.KernelStats, error) {
	return c.Launch2DCtx(ctx, dev, gridDim, 1, blockDim, 1, params)
}

// Launch2DCtx runs the compiled kernel with a 2-D grid and 2-D blocks,
// mirroring the cycle simulator's launch prelude (validation, dimension
// checks, mechanism reset, constant-bank image) and its fault/halt/
// error semantics. Blocks execute sequentially in ctaid order and warps
// within a block round-robin between barrier segments, which preserves
// the functional projection of the launch; only the timing-model fields
// of KernelStats (Cycles, L1/L2/DRAM, fault cycle stamps) differ from
// the cycle tier.
func (c *Compiled) Launch2DCtx(ctx context.Context, dev *sim.Device, gridX, gridY, blockX, blockY int, params []uint64) (st *sim.KernelStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			st, err = nil, &sim.PanicError{Op: "Launch", Value: r, Stack: debug.Stack()}
		}
	}()
	p := c.prog
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if gridX <= 0 || gridY <= 0 || blockX <= 0 || blockY <= 0 {
		return nil, fmt.Errorf("fastsim: bad launch dimensions (%d,%d) x (%d,%d)", gridX, gridY, blockX, blockY)
	}
	gridDim, blockDim := gridX*gridY, blockX*blockY
	if blockDim > 1024 {
		return nil, fmt.Errorf("fastsim: block %d x %d exceeds 1024 threads", blockX, blockY)
	}
	if len(params) < p.NumParams {
		return nil, fmt.Errorf("fastsim: kernel %s expects %d params, got %d", p.Name, p.NumParams, len(params))
	}
	dev.Mech.Reset()

	cbank := mem.NewAddrSpace()
	cbank.Write(uint64(p.StackPtrConst), alloc.StackTop, 8)
	for i, v := range params {
		cbank.Write(uint64(p.ParamBase+8*i), v, 8)
	}

	e := &engine{
		ctx:      ctx,
		ctxArmed: ctx != nil && ctx.Done() != nil,
		dev:      dev,
		c:        c,
		cfg:      &dev.Cfg,
		mech:     dev.Mech,
		global:   dev.Global,
		heap:     dev.Heap(),
		cbank:    cbank,
		tracer:   dev.Tracer,
		grid:     gridDim,
		bdim:     blockDim,
		gridX:    gridX,
		bdimX:    blockX,
		noProg:   dev.Cfg.Watchdog.NoProgressCycles,
		maxInstrs: dev.Cfg.MaxCycles,
		smTime:   make([]uint64, dev.Cfg.NumSMs),
	}
	e.stats.MemInstrs = make(map[isa.Opcode]uint64)
	if dev.Cfg.RaceOracle {
		e.race = sim.NewRaceOracle()
	}

	for ctaid := 0; ctaid < gridDim; ctaid++ {
		e.runBlock(ctaid)
		if e.runErr != nil {
			return nil, e.runErr
		}
		if e.halted {
			break
		}
	}
	out := e.stats
	for op, n := range e.memInstrs {
		if n != 0 {
			out.MemInstrs[isa.Opcode(op)] = n
		}
	}
	out.Halted = e.halted
	if e.race != nil {
		out.Races = e.race.Records()
		out.SharedShadowed = e.race.Shadowed()
	}
	for _, t := range e.smTime {
		if t > out.Cycles {
			out.Cycles = t
		}
	}
	return &out, nil
}

// runBlock instantiates and executes one thread block. Warps run
// round-robin between barrier segments: each live warp runs until it
// parks at a barrier or exits, and the barrier releases once every live
// warp of the block is parked — the cycle simulator's release rule.
func (e *engine) runBlock(ctaid int) {
	e.ctaid = ctaid
	e.smID = ctaid % e.cfg.NumSMs
	e.blockBase = e.smTime[e.smID]
	wpb := (e.bdim + 31) / 32
	numRegs := e.c.prog.NumRegs
	if numRegs < 8 {
		numRegs = 8
	}
	shared := mem.NewAddrSpace()
	if e.race != nil {
		e.shadow = e.race.NewBlockShadow()
	}
	warps := make([]*fwarp, 0, wpb)
	for wi := 0; wi < wpb; wi++ {
		lanes := e.bdim - wi*32
		if lanes > 32 {
			lanes = 32
		}
		w := &fwarp{
			globalID:   ctaid*wpb + wi,
			warpIdx:    wi,
			lanes:      lanes,
			launchMask: uint32(1)<<uint(lanes) - 1,
			pendingSSY: -1,
			shared:     shared,
			locals:     make([]*mem.AddrSpace, lanes),
		}
		w.stack = []simtEntry{{pc: 0, rpc: -1, mask: w.launchMask}}
		w.rf = make([]uint64, lanes*numRegs)
		w.nregs = numRegs
		w.preds[isa.PT] = w.launchMask
		warps = append(warps, w)
	}

	for {
		anyLive := false
		for _, w := range warps {
			if w.done {
				continue
			}
			anyLive = true
			if w.atBarrier {
				continue
			}
			e.runWarp(w)
			if e.halted || e.runErr != nil {
				return
			}
		}
		if !anyLive {
			break
		}
		// Every live warp is parked (runWarp only stops at a barrier,
		// exit, halt, or error): release the barrier.
		for _, w := range warps {
			if !w.done {
				w.atBarrier = false
				w.sinceProg = 0
			}
		}
		if e.shadow != nil {
			e.shadow.EpochEnd()
		}
	}
	if e.shadow != nil {
		e.shadow.EpochEnd()
		e.shadow = nil
	}

	// Block retired: fold its time estimate into its SM's timeline.
	var blockTime uint64
	for _, w := range warps {
		if w.vtime > blockTime {
			blockTime = w.vtime
		}
	}
	e.smTime[e.smID] += blockTime
}

// runWarp executes a warp block-by-block until it exits, parks at a
// barrier, faults the launch, or errors. Reconvergence (syncTop) is
// checked only at block entry: every reconvergence pc is an SSY target
// and therefore a block leader.
func (e *engine) runWarp(w *fwarp) {
	for {
		if !w.syncTop() {
			return
		}
		top := &w.stack[len(w.stack)-1]
		pc := int(top.pc)
		if pc < 0 || pc >= len(e.c.blockOf) || e.c.blockOf[pc] < 0 {
			e.fail(fmt.Errorf("fastsim: %s: control reached pc %d outside any basic block", e.c.prog.Name, pc))
			return
		}
		blk := &e.c.blocks[e.c.blockOf[pc]]
		active := top.mask &^ w.exited
		trace := e.tracer != nil

		for k := range blk.body {
			if trace {
				e.traceEv.Addrs = e.traceEv.Addrs[:0]
			}
			exec := blk.body[k](e, w, active)
			w.vtime++
			if trace {
				e.emitTrace(blk.start+k, blk.ops[k], blk.hintA[k], w, exec)
			}
			if e.halted || e.runErr != nil {
				return
			}
			if e.step(w) {
				return
			}
		}

		if blk.term == termFall {
			top.pc = blk.next
			continue
		}
		// Control terminator (BRA/EXIT/BAR): counted and traced like any
		// issued instruction.
		exec := blk.termGuard(w, active)
		e.count(exec)
		w.vtime++
		if trace {
			e.traceEv.Addrs = e.traceEv.Addrs[:0]
			e.emitTrace(blk.termPC, blk.termOp, false, w, exec)
		}
		if e.step(w) {
			return
		}
		switch blk.term {
		case termEXIT:
			w.exited |= exec
			w.sinceProg = 0
			top.pc = blk.next
		case termBAR:
			w.atBarrier = true
			w.sinceProg = 0
			top.pc = blk.next
			return
		case termBRA:
			e.branch(w, top, blk, active, exec)
			if e.runErr != nil {
				return
			}
		}
	}
}

// branch implements the SIMT reconvergence-stack transform, mirroring
// the cycle simulator's branch().
func (e *engine) branch(w *fwarp, top *simtEntry, blk *bblock, active, taken uint32) {
	switch {
	case taken == active:
		top.pc = blk.target
	case taken == 0:
		top.pc = blk.next
	default:
		rpc := w.pendingSSY
		if rpc < 0 {
			e.fail(fmt.Errorf("fastsim: %s: divergent branch at pc %d without SSY", e.c.prog.Name, blk.termPC))
			return
		}
		top.pc = rpc
		w.stack = append(w.stack,
			simtEntry{pc: blk.next, rpc: rpc, mask: active &^ taken},
			simtEntry{pc: blk.target, rpc: rpc, mask: taken},
		)
	}
	w.pendingSSY = -1
}

// step performs per-instruction bookkeeping: the instruction budget,
// the no-progress watchdog, and context-cancellation polling. It
// reports whether the launch must stop.
func (e *engine) step(w *fwarp) bool {
	w.icount++
	w.sinceProg++
	if e.maxInstrs > 0 && w.icount > e.maxInstrs {
		e.fail(&sim.CycleLimitError{Kernel: e.c.prog.Name, Limit: e.maxInstrs})
		return true
	}
	if e.noProg > 0 && w.sinceProg > e.noProg {
		e.runErr = &sim.WatchdogError{
			Kind:   sim.WatchdogNoProgress,
			Kernel: e.c.prog.Name,
			Cycle:  e.blockBase + w.vtime,
			Detail: fmt.Sprintf("warp%d issued %d instructions without memory/heap/barrier/exit activity", w.globalID, e.noProg),
		}
		e.halted = true
		return true
	}
	e.tick++
	if e.ctxArmed && e.tick&1023 == 0 {
		if err := e.ctx.Err(); err != nil {
			e.runErr = &sim.ContextError{Kernel: e.c.prog.Name, Cycle: e.blockBase + w.vtime, Err: err}
			e.halted = true
			return true
		}
	}
	return false
}

// count updates the issued-instruction statistics exactly like the
// cycle simulator's issue path.
func (e *engine) count(exec uint32) {
	e.stats.Instrs++
	e.stats.ThreadInstrs += uint64(bits.OnesCount32(exec))
}

// fail aborts the launch with an error (the cycle simulator's
// runErr+halted convention).
func (e *engine) fail(err error) {
	if e.runErr == nil {
		e.runErr = err
	}
	e.halted = true
}

// recordFault appends a fault record and halts the launch if
// configured. The SM index is the block's deterministic SM assignment
// (ctaid mod NumSMs) and the cycle stamp is the virtual-time estimate;
// both are scheduling artifacts excluded from the cross-tier
// functional projection.
func (e *engine) recordFault(f *core.Fault, pc int, w *fwarp, lane int) {
	e.stats.Faults = append(e.stats.Faults, sim.FaultRecord{
		Fault: f, PC: pc, SM: e.smID, Warp: w.globalID, Lane: lane,
		Cycle: e.blockBase + w.vtime,
	})
	if e.cfg.HaltOnFault {
		e.halted = true
	}
}

// trap raises the TRAP software fault (one record per warp instruction).
func (e *engine) trap(pc int, w *fwarp, lane int, code int32) {
	e.recordFault(core.NewFault(core.FaultSpatial, 0, 0,
		fmt.Sprintf("software bounds check trap (code %d)", code)), pc, w, lane)
}

// specialReg reads an S2R value for a lane. SRSMID reports the
// deterministic block-to-SM assignment.
func (e *engine) specialReg(w *fwarp, lane int, sr isa.SReg) uint64 {
	tid := w.warpIdx*32 + lane
	switch sr {
	case isa.SRTidX:
		return uint64(tid % e.bdimX)
	case isa.SRTidY:
		return uint64(tid / e.bdimX)
	case isa.SRCtaidX:
		return uint64(e.ctaid % e.gridX)
	case isa.SRCtaidY:
		return uint64(e.ctaid / e.gridX)
	case isa.SRNtidX:
		return uint64(e.bdimX)
	case isa.SRNtidY:
		return uint64(e.bdim / e.bdimX)
	case isa.SRNctaidX:
		return uint64(e.gridX)
	case isa.SRNctaidY:
		return uint64(e.grid / e.gridX)
	case isa.SRLaneID:
		return uint64(lane)
	case isa.SRWarpID:
		return uint64(w.warpIdx)
	case isa.SRSMID:
		return uint64(e.smID)
	default:
		return 0
	}
}

// emitTrace delivers one executed instruction to the attached tracer
// (memory closures have already collected lane addresses into traceEv).
func (e *engine) emitTrace(pc int, op isa.Opcode, hintA bool, w *fwarp, exec uint32) {
	e.traceEv.PC = pc
	e.traceEv.Op = op
	e.traceEv.SM = e.smID
	e.traceEv.Warp = w.globalID
	e.traceEv.Active = exec
	e.traceEv.HintA = hintA
	e.tracer.Trace(&e.traceEv)
}
