package fastsim_test

import (
	"testing"

	"lmi/internal/fastsim"
	"lmi/internal/isa"
)

// cacheProgN builds a trivial program of n+1 instructions so distinct
// contents exist for distinct digests.
func cacheProgN(name string, n int) *isa.Program {
	rz := [3]isa.Reg{isa.RZ, isa.RZ, isa.RZ}
	instrs := make([]isa.Instr, 0, n+1)
	for i := 0; i < n; i++ {
		instrs = append(instrs, isa.Instr{Op: isa.IADD, Dst: 0, Src: rz, HasImm: true, Imm: int32(i + 1), Pred: isa.PT})
	}
	instrs = append(instrs, isa.Instr{Op: isa.EXIT, Dst: isa.RZ, Src: rz, Pred: isa.PT})
	return prog(name, 2, instrs)
}

// TestCacheDigestWarmAcrossReload: the bundle-reload regression. A hot
// reload decodes an equal-but-distinct *isa.Program; under the same
// content digest the cache must stay warm (no recompile), and under a
// changed digest it must never serve the old closure.
func TestCacheDigestWarmAcrossReload(t *testing.T) {
	c := fastsim.NewCache(4)
	v1 := cacheProgN("k", 1)
	first, err := c.GetDigest("digest-a", v1)
	if err != nil {
		t.Fatal(err)
	}

	// Identical reload: same content, fresh pointer. Pointer-keyed
	// lookup would cold-start here; digest-keyed must hit.
	reloaded := cacheProgN("k", 1)
	if reloaded == v1 {
		t.Fatalf("test needs distinct pointers")
	}
	second, err := c.GetDigest("digest-a", reloaded)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatalf("identical reload cold-started: cache recompiled under an unchanged digest")
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want hits=1 misses=1", st)
	}

	// Changed program, new digest: must compile fresh — the old closure
	// must be unreachable for the new content.
	v2 := cacheProgN("k", 3)
	third, err := c.GetDigest("digest-b", v2)
	if err != nil {
		t.Fatal(err)
	}
	if third == first {
		t.Fatalf("changed program served the old closure")
	}
}

// TestCacheDigestInsertsAtCapacity: a reload must warm its table even
// on a full cache — digest entries are bounded by RetainDigests, not by
// the pointer-cache capacity.
func TestCacheDigestInsertsAtCapacity(t *testing.T) {
	c := fastsim.NewCache(1)
	if _, err := c.Get(cacheProgN("fill", 1)); err != nil {
		t.Fatal(err)
	}
	a, err := c.GetDigest("d1", cacheProgN("k", 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.GetDigest("d1", cacheProgN("k", 2))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("digest entry was not retained on a full cache")
	}
}

// TestCacheRetainDigests: swap-time invalidation keeps shared entries
// warm and evicts stale ones; an empty digest falls back to the
// pointer-keyed path.
func TestCacheRetainDigests(t *testing.T) {
	c := fastsim.NewCache(8)
	keep, _ := c.GetDigest("keep", cacheProgN("a", 1))
	if _, err := c.GetDigest("stale", cacheProgN("b", 2)); err != nil {
		t.Fatal(err)
	}
	c.RetainDigests(map[string]bool{"keep": true})
	if st := c.Stats(); st.Size != 1 {
		t.Fatalf("size %d after retain, want 1", st.Size)
	}
	again, err := c.GetDigest("keep", cacheProgN("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	if again != keep {
		t.Fatalf("retained digest was evicted")
	}
	hitsBefore := c.Stats().Hits
	if _, err := c.GetDigest("stale", cacheProgN("b", 2)); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Hits != hitsBefore {
		t.Fatalf("stale digest survived RetainDigests")
	}

	p := cacheProgN("ptr", 1)
	x, err := c.GetDigest("", p)
	if err != nil {
		t.Fatal(err)
	}
	y, err := c.Get(p)
	if err != nil {
		t.Fatal(err)
	}
	if x != y {
		t.Fatalf("empty digest did not fall back to the pointer-keyed entry")
	}
}
