// Package fastsim is the compiled fast-path execution tier: a compiler
// from isa.Program to basic-block-level Go closures plus a functional
// warp-level engine. Each instruction is decoded exactly once, at
// compile time — operand routing (register vs immediate form, RZ
// hardwiring, 32- vs 64-bit narrowing) is specialised via the ISA's
// SrcRegs/ImmSrcIndex/WritesDst tables, and the extent-check predicate
// is hoisted out of the access path using the E/A/S microcode hint bits
// (bits 29/28/27): an E-hinted access compiles to the elided
// (canonicalise-only) closure, an A-hinted integer op to the
// OCU-checked closure, and everything else to the plain closure.
//
// The cycle-level simulator (internal/sim) remains the semantic oracle
// and the only timing model. The compiled tier reproduces the
// *functional* projection of a launch exactly — instruction and
// lane-instruction counts, per-opcode memory-instruction counts,
// PointerChecks, ECChecked/ECElided, fault records (location and fault
// content), halt status, and all guest-visible memory — while replacing
// the per-cycle scheduling, scoreboard, and cache hierarchy with a
// deterministic per-warp time estimate. KernelStats fields that only
// the timing model defines (Cycles, L1/L2/DRAM counters, FaultRecord
// cycle stamps) are estimates or zero; the differential gate
// (internal/fastsim tests, scripts/check.sh) compares the functional
// projection across tiers over the full workload and chaos corpora.
package fastsim

import (
	"context"
	"fmt"

	"lmi/internal/isa"
	"lmi/internal/sim"
)

// Tier selects the execution engine a kernel launch runs on.
type Tier int

const (
	// TierCycle is the cycle-level simulator (the reference oracle and
	// timing model).
	TierCycle Tier = iota
	// TierCompiled is the compiled fast-path tier defined by this
	// package.
	TierCompiled
)

// TierNames lists the accepted -tier flag spellings, in declaration
// order (feeds cliutil.EnumCheck on every CLI's flag surface).
func TierNames() []string { return []string{"cycle", "compiled"} }

// String returns the tier's flag spelling.
func (t Tier) String() string {
	switch t {
	case TierCycle:
		return "cycle"
	case TierCompiled:
		return "compiled"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// ParseTier parses a -tier flag value.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "cycle":
		return TierCycle, nil
	case "compiled":
		return TierCompiled, nil
	default:
		return 0, fmt.Errorf("fastsim: unknown tier %q (want cycle | compiled)", s)
	}
}

// LaunchTierCtx launches a kernel on the selected tier: the cycle
// simulator's LaunchCtx, or a fresh compile-and-run on the compiled
// tier. It is the single dispatch point the runner, chaos, serving, and
// CLI layers go through.
func LaunchTierCtx(ctx context.Context, tier Tier, dev *sim.Device, p *isa.Program, gridDim, blockDim int, params []uint64) (*sim.KernelStats, error) {
	if tier == TierCycle {
		return dev.LaunchCtx(ctx, p, gridDim, blockDim, params)
	}
	c, err := Compile(p)
	if err != nil {
		return nil, err
	}
	return c.LaunchCtx(ctx, dev, gridDim, blockDim, params)
}
