package fastsim

import (
	"sync"

	"lmi/internal/isa"
)

// CacheStats is a Cache counter snapshot. The counts are operational
// telemetry only: they depend on request interleaving, so they must
// never be folded into byte-compared reports.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Size   int    `json:"size"`
	Cap    int    `json:"cap"`
}

// Cache is a bounded compile cache for the fast-path tier, keyed by
// program identity. Programs are immutable once compiled (injection
// kinds that rewrite code clone first), so pointer identity is a sound
// cache key: a hit returns the exact Compiled the program produced
// before, and per-trial mutated clones are always fresh pointers that
// can never alias a cached entry.
//
// The cache never evicts — entries insert only while under capacity —
// so a long-lived serving shard that warms its stable victim programs
// keeps them hot forever, and the unbounded stream of per-trial clones
// cannot wash them out. Safe for concurrent use; a racing miss may
// compile the same program twice, but only one Compiled is retained
// and returned to every caller thereafter.
type Cache struct {
	mu       sync.Mutex
	capacity int
	m        map[*isa.Program]*Compiled
	byDigest map[string]*Compiled
	hits     uint64
	misses   uint64
}

// NewCache builds a cache holding at most capacity compiled programs
// (<= 0 means 16).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 16
	}
	return &Cache{
		capacity: capacity,
		m:        make(map[*isa.Program]*Compiled, capacity),
		byDigest: make(map[string]*Compiled),
	}
}

// Get returns the compiled form of p, compiling on miss. The result is
// inserted only while the cache is under capacity; at capacity the
// compile still succeeds but is not retained.
func (c *Cache) Get(p *isa.Program) (*Compiled, error) {
	c.mu.Lock()
	if cp, ok := c.m[p]; ok {
		c.hits++
		c.mu.Unlock()
		return cp, nil
	}
	c.misses++
	c.mu.Unlock()

	// Compile outside the lock: a slow compile must not serialize hits
	// on other programs.
	cp, err := Compile(p)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.m[p]; ok {
		return prev, nil // a racing miss beat us; keep its result
	}
	if len(c.m) < c.capacity {
		c.m[p] = cp
	}
	return cp, nil
}

// GetDigest returns the compiled form of the program identified by a
// content digest (a bundle entry digest), compiling p on miss. Digest
// keys exist for bundle-backed serving, where a hot reload decodes an
// equal-but-distinct *isa.Program: identical content reloads under the
// same digest and stays warm, while changed content arrives under a new
// digest and can never be served the old closure. Digest entries
// always insert (a reload must be able to warm its table even on a
// full cache); their population is bounded by the bundle size, because
// RetainDigests drops stale digests at every swap.
func (c *Cache) GetDigest(digest string, p *isa.Program) (*Compiled, error) {
	if digest == "" {
		return c.Get(p)
	}
	c.mu.Lock()
	if cp, ok := c.byDigest[digest]; ok {
		c.hits++
		c.mu.Unlock()
		return cp, nil
	}
	c.misses++
	c.mu.Unlock()

	cp, err := Compile(p)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.byDigest[digest]; ok {
		return prev, nil
	}
	c.byDigest[digest] = cp
	return cp, nil
}

// SpecKey derives the digest-cache key for a bundle entry's
// contract-specialized residual: the entry digest qualified by the
// canonical contract shape. The residual is a different program from
// the general one under the same entry, and the same entry could in
// principle ship residuals for several shapes — the composite key keeps
// every (program, shape) pair its own cache line while RetainDigests
// still drops them with their entry on reload.
func SpecKey(digest, shape string) string { return digest + "+" + shape }

// RetainDigests drops every digest-keyed entry whose digest is not in
// keep — the reload-time invalidation: entries shared between the old
// and new bundle stay warm, entries for changed or removed programs
// become unreachable with the table swap.
func (c *Cache) RetainDigests(keep map[string]bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for d := range c.byDigest {
		if !keep[d] {
			delete(c.byDigest, d)
		}
	}
}

// Warm compiles and inserts the given programs up front (subject to
// capacity), so a shard's stable victim set is hot before the first
// request. Compile failures are skipped — the per-launch Get surfaces
// the same error to the request that actually needs the program.
func (c *Cache) Warm(progs ...*isa.Program) {
	for _, p := range progs {
		if p == nil {
			continue
		}
		c.Get(p)
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Size: len(c.m) + len(c.byDigest), Cap: c.capacity}
}
