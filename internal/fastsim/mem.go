package fastsim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"lmi/internal/core"
	"lmi/internal/isa"
	"lmi/internal/mem"
	"lmi/internal/sim"
)

// pageWin caches one AddrSpace page window across the lanes of a single
// warp memory instruction: consecutive lanes overwhelmingly touch the
// same page, so the per-access page-map lookup is amortised to one per
// page transition. The cache lives only for one closure invocation —
// the engine is single-threaded within a launch, and nothing else
// mutates the address space between the lanes of one instruction (the
// straddle fallback in store is the lone exception, handled by
// invalidation).
type pageWin struct {
	as   *mem.AddrSpace
	base uint64 // page base address of the cached window
	win  []byte // nil when the page is unmapped (loads read zero)
	ok   bool
}

// load mirrors AddrSpace.Read for in-page accesses via the cached
// window, falling back to Read for page-straddling ones.
func (pw *pageWin) load(addr, size uint64) uint64 {
	base := addr &^ uint64(mem.PageWindowSize-1)
	off := addr - base
	if off+size <= mem.PageWindowSize {
		if !pw.ok || base != pw.base {
			pw.win = pw.as.PageWindow(base, false)
			pw.base, pw.ok = base, true
		}
		if pw.win == nil {
			return 0
		}
		w := pw.win[off:]
		switch size {
		case 1:
			return uint64(w[0])
		case 2:
			return uint64(binary.LittleEndian.Uint16(w))
		case 4:
			return uint64(binary.LittleEndian.Uint32(w))
		case 8:
			return binary.LittleEndian.Uint64(w)
		}
	}
	return pw.as.Read(addr, int(size))
}

// store mirrors AddrSpace.Write likewise; a nil cached window is
// refetched with allocation since stores materialise pages.
func (pw *pageWin) store(addr, val, size uint64) {
	base := addr &^ uint64(mem.PageWindowSize-1)
	off := addr - base
	if off+size <= mem.PageWindowSize {
		if !pw.ok || base != pw.base || pw.win == nil {
			pw.win = pw.as.PageWindow(base, true)
			pw.base, pw.ok = base, true
		}
		w := pw.win[off:]
		switch size {
		case 1:
			w[0] = byte(val)
			return
		case 2:
			binary.LittleEndian.PutUint16(w, uint16(val))
			return
		case 4:
			binary.LittleEndian.PutUint32(w, uint32(val))
			return
		case 8:
			binary.LittleEndian.PutUint64(w, val)
			return
		}
	}
	// Straddling store: the slow path may materialise the cached page
	// behind the window cache, so drop the cache.
	pw.as.Write(addr, val, int(size))
	pw.ok = false
}

// countEC folds a warp memory instruction's per-lane extent-check
// count into the launch statistics: every lane of an E-hinted site is
// an elision, every lane of a checked site runs the extent check
// (including faulting lanes — the check ran and failed).
func (e *engine) countEC(hintE bool, n uint64) {
	if hintE {
		e.stats.ECElided += n
	} else {
		e.stats.ECChecked += n
	}
}

// addLineSet records line la in the per-instruction transaction set if
// it is not already present (the set is tiny — warp accesses coalesce
// to a handful of lines — so linear scan beats anything fancier).
func addLineSet(lines []uint64, la uint64) []uint64 {
	for _, x := range lines {
		if x == la {
			return lines
		}
	}
	return append(lines, la)
}

// memClosure compiles one warp-level memory instruction. All decode
// decisions — memory space, access size, store/load/atomic role, the
// operand registers, the sign-extension flag, and crucially the E-hint
// extent-check elision — are resolved here, once; the returned closure
// replays the cycle simulator's per-lane EC-site semantics (raw-pointer
// coalescing judgement, Canonical on the elided path vs CheckAccess on
// the checked path, ECElided/ECChecked accounting, per-lane fault
// suppression) without any per-execution decoding.
func (cc *compiler) memClosure(in *isa.Instr, pc int, g guardFn) opFn {
	op := in.Op
	space := op.MemSpace()
	size := in.AccSize()
	isStore := op.IsStore()
	isAtom := op == isa.ATOMG || op == isa.ATOMS
	addrReg := in.Src[0]
	off := sx32(in.Imm)
	dataReg := in.Src[1]
	dst := in.Dst
	signExt := in.SignExtend() && size == 4
	hintE := in.Hint.E
	// Race-oracle access class, resolved at compile time; whether the
	// oracle is armed is a per-launch runtime decision (closures are
	// cached across launches).
	shadowed := space == isa.SpaceShared
	raceKind := sim.RaceRead
	if op == isa.ATOMS {
		raceKind = sim.RaceAtomic
	} else if isStore {
		raceKind = sim.RaceWrite
	}

	return func(e *engine, w *fwarp, active uint32) uint32 {
		exec := g(w, active)
		e.count(exec)
		if exec != 0 {
			e.memInstrs[op]++
		}
		w.sinceProg = 0
		// LineSize is validated as a power of two at device creation, so
		// the per-lane line arithmetic reduces to shifts and masks.
		lineSize := e.cfg.LineSize
		lineShift := uint(bits.TrailingZeros64(lineSize))
		lineMask := lineSize - 1
		lines := w.lineBuf[:0]
		var (
			prevLine    uint64
			havePrev    bool
			prevRawLine uint64
			haveRaw     bool
			extraSum    uint64
			ecCount     uint64
			pw          pageWin
		)
		switch space {
		case isa.SpaceGlobal:
			pw.as = e.global
		case isa.SpaceShared:
			pw.as = w.shared
		}
		trace := e.tracer != nil
		// Everything about the access except the pointer and the
		// coalescing judgement is invariant across the lanes.
		acc := sim.Access{
			SM: e.smID, Space: space, Size: size,
			Store: isStore, Cycle: e.blockBase + w.vtime,
		}

		rf, nr := w.rf, w.nregs
		for m := exec; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			regs := rf[lane*nr : lane*nr+nr]
			raw := off
			if addrReg != isa.RZ {
				raw += regs[addrReg]
			}
			// Coalescing is judged on raw (possibly tagged) pointer lines,
			// exactly as in the cycle simulator's LSU.
			rawLine := raw >> lineShift
			coalesced := haveRaw && rawLine == prevRawLine
			prevRawLine, haveRaw = rawLine, true
			var eff uint64
			if hintE {
				// Compile-time-hoisted elision: the E hint proved this
				// access in-bounds, so the address is canonicalised
				// directly and no extent check runs.
				eff = e.mech.Canonical(raw)
				ecCount++
			} else {
				var extra uint64
				var fault *core.Fault
				acc.Ptr, acc.Coalesced = raw, coalesced
				eff, extra, fault = e.mech.CheckAccess(acc)
				ecCount++
				extraSum += extra
				if fault != nil {
					e.recordFault(fault, pc, w, lane)
					if e.halted {
						e.countEC(hintE, ecCount)
						w.lineBuf = lines
						return exec
					}
					continue // access suppressed for this lane
				}
			}
			if trace {
				e.traceEv.Addrs = append(e.traceEv.Addrs, eff)
			}
			if shadowed && e.shadow != nil {
				e.shadow.Record(pc, w.warpIdx*32+lane, raceKind, eff, size)
			}

			// Functional access (mirrors the cycle simulator's LSU).
			switch space {
			case isa.SpaceGlobal, isa.SpaceShared:
				if isAtom {
					old := pw.load(eff, size)
					add := uint64(0)
					if dataReg != isa.RZ {
						add = regs[dataReg]
					}
					pw.store(eff, uint64(uint32(int32(old)+int32(add))), size)
					if dst != isa.RZ {
						regs[dst] = old
					}
				} else if isStore {
					val := uint64(0)
					if dataReg != isa.RZ {
						val = regs[dataReg]
					}
					pw.store(eff, val, size)
				} else {
					v := pw.load(eff, size)
					if dst != isa.RZ {
						if signExt {
							v = sx32(int32(uint32(v)))
						}
						regs[dst] = v
					}
				}
			case isa.SpaceLocal:
				lm := w.locals[lane]
				if lm == nil {
					lm = mem.NewAddrSpace()
					w.locals[lane] = lm
				}
				if isStore {
					val := uint64(0)
					if dataReg != isa.RZ {
						val = regs[dataReg]
					}
					lm.Write(eff, val, int(size))
				} else {
					v := lm.Read(eff, int(size))
					if dst != isa.RZ {
						if signExt {
							v = sx32(int32(uint32(v)))
						}
						regs[dst] = v
					}
				}
			}

			// Transaction-line accounting (timing estimate).
			la := eff >> lineShift
			if !havePrev || la != prevLine {
				lines = addLineSet(lines, la)
			}
			prevLine, havePrev = la, true
			if (eff&lineMask)+size > lineSize {
				lines = addLineSet(lines, la+1)
			}
		}

		e.countEC(hintE, ecCount)
		// Deterministic per-warp latency estimate (not part of the
		// functional projection): one base latency plus transaction
		// serialisation plus mechanism extras.
		var lat uint64
		if space == isa.SpaceShared {
			lat = e.cfg.SharedLatency
		} else {
			lat = e.cfg.L1Latency
		}
		if n := uint64(len(lines)); n > 1 {
			lat += n - 1
		}
		w.vtime += lat + extraSum
		w.lineBuf = lines
		return exec
	}
}

// heapClosure compiles a device MALLOC/FREE intrinsic, mirroring the
// cycle simulator's per-lane heap semantics: allocator errors abort the
// launch, free-of-invalid faults are recorded per lane, and tagging is
// skipped when MALLOC's destination is RZ.
func (cc *compiler) heapClosure(in *isa.Instr, pc int, g guardFn) opFn {
	op := in.Op
	isMalloc := op == isa.MALLOC
	srcReg := in.Src[0]
	dst := in.Dst

	return func(e *engine, w *fwarp, active uint32) uint32 {
		exec := g(w, active)
		e.count(exec)
		if exec != 0 {
			e.memInstrs[op]++
		}
		w.sinceProg = 0
		lanes := uint64(0)
		rf, nr := w.rf, w.nregs
		for m := exec; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			lanes++
			regs := rf[lane*nr : lane*nr+nr]
			val := uint64(0)
			if srcReg != isa.RZ {
				val = regs[srcReg]
			}
			if isMalloc {
				size := val
				if int64(size) < 0 {
					e.fail(fmt.Errorf("fastsim: %s: negative malloc size at pc %d", e.c.prog.Name, pc))
					return exec
				}
				b, err := e.heap.Malloc(size)
				if err != nil {
					e.fail(fmt.Errorf("fastsim: %s: %w", e.c.prog.Name, err))
					return exec
				}
				if dst != isa.RZ {
					tagged, err := e.mech.TagAlloc(b, isa.SpaceHeap)
					if err != nil {
						e.fail(fmt.Errorf("fastsim: %s: %w", e.c.prog.Name, err))
						return exec
					}
					regs[dst] = tagged
				}
			} else { // FREE
				addr := e.mech.UntagFree(val, isa.SpaceHeap)
				if err := e.heap.Free(addr); err != nil {
					var f *core.Fault
					if errors.As(err, &f) {
						e.recordFault(f, pc, w, lane)
						if e.halted {
							return exec
						}
					} else {
						e.fail(err)
						return exec
					}
				}
			}
		}
		w.vtime += e.cfg.MallocBaseLatency + e.cfg.MallocLaneLatency*lanes
		return exec
	}
}
