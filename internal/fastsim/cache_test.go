package fastsim_test

import (
	"sync"
	"testing"

	"lmi/internal/fastsim"
	"lmi/internal/isa"
)

// cacheProg builds a distinct trivial program per name (pointer
// identity is the cache key, so each call is a fresh entry).
func cacheProg(name string) *isa.Program {
	rz := [3]isa.Reg{isa.RZ, isa.RZ, isa.RZ}
	return prog(name, 2, []isa.Instr{
		{Op: isa.IADD, Dst: 0, Src: rz, HasImm: true, Imm: 1, Pred: isa.PT},
		{Op: isa.EXIT, Dst: isa.RZ, Src: rz, Pred: isa.PT},
	})
}

// TestCacheHitReturnsSameCompiled: a repeat Get for the same program
// returns the identical *Compiled and counts a hit, not a recompile.
func TestCacheHitReturnsSameCompiled(t *testing.T) {
	c := fastsim.NewCache(4)
	p := cacheProg("k")
	first, err := c.Get(p)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Get(p)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("repeat Get compiled a fresh program; cache did not hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats = %+v, want hits=1 misses=1 size=1", st)
	}
}

// TestCacheBounded: at capacity the cache stops retaining — overflow
// programs still compile on every Get, and the resident set never
// exceeds the cap. This is what keeps a shard's warm victim set from
// being washed out by the unbounded stream of per-trial clones.
func TestCacheBounded(t *testing.T) {
	c := fastsim.NewCache(1)
	warm := cacheProg("warm")
	if _, err := c.Get(warm); err != nil {
		t.Fatal(err)
	}
	clone := cacheProg("clone")
	a, err := c.Get(clone)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Get(clone)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("overflow program was retained despite a full cache")
	}
	if st := c.Stats(); st.Size != 1 || st.Cap != 1 {
		t.Fatalf("stats = %+v, want the single warm entry resident", st)
	}
	// The warm entry stayed hot through the overflow traffic.
	before := c.Stats().Hits
	if _, err := c.Get(warm); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Hits != before+1 {
		t.Fatalf("warm entry missed after overflow traffic")
	}
}

// TestCacheWarm: Warm pre-populates so the first real Get is a hit.
func TestCacheWarm(t *testing.T) {
	c := fastsim.NewCache(2)
	p, q := cacheProg("p"), cacheProg("q")
	c.Warm(p, q, nil) // nil programs are skipped, not a panic
	st := c.Stats()
	if st.Size != 2 || st.Misses != 2 {
		t.Fatalf("stats after warm = %+v, want size=2 misses=2", st)
	}
	if _, err := c.Get(p); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Hits != 1 {
		t.Fatalf("first Get after Warm missed: %+v", got)
	}
}

// TestCacheConcurrentGet: racing misses on one program converge on a
// single retained Compiled; every caller gets a usable result.
func TestCacheConcurrentGet(t *testing.T) {
	c := fastsim.NewCache(4)
	p := cacheProg("racy")
	results := make([]*fastsim.Compiled, 16)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cp, err := c.Get(p)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = cp
		}(i)
	}
	wg.Wait()
	canon, err := c.Get(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, cp := range results {
		if cp == nil {
			t.Fatalf("goroutine %d got no result", i)
		}
		if cp != canon {
			// A racing miss may have compiled its own copy before the
			// winner inserted; that copy must still be functional, but
			// after the race settles every Get returns the canonical one.
			if again, _ := c.Get(p); again != canon {
				t.Fatalf("cache did not converge on one Compiled")
			}
		}
	}
	if st := c.Stats(); st.Size != 1 {
		t.Fatalf("race left %d entries for one program", st.Size)
	}
}
