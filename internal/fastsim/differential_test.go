package fastsim_test

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"lmi/internal/compiler"
	"lmi/internal/fastsim"
	"lmi/internal/isa"
	"lmi/internal/sim"
	"lmi/internal/workloads"
)

// launchBoth runs one program on a fresh device per tier (identical
// config, mechanism, and allocations) and returns both outcomes.
func launchBoth(t *testing.T, prog *isa.Program, v workloads.Variant, cfg sim.Config, grid, block int, n uint64) (cycle, fast *sim.KernelStats) {
	t.Helper()
	run := func(tier fastsim.Tier) *sim.KernelStats {
		dev, err := sim.NewDevice(cfg, workloads.NewMechanism(v))
		if err != nil {
			t.Fatalf("device: %v", err)
		}
		bytes := n * 4
		in, err := dev.Malloc(bytes)
		if err != nil {
			t.Fatalf("malloc: %v", err)
		}
		out, err := dev.Malloc(bytes)
		if err != nil {
			t.Fatalf("malloc: %v", err)
		}
		st, err := fastsim.LaunchTierCtx(context.Background(), tier, dev, prog, grid, block, []uint64{in, out, n})
		if err != nil {
			t.Fatalf("%v tier: %v", tier, err)
		}
		return st
	}
	return run(fastsim.TierCycle), run(fastsim.TierCompiled)
}

// faultProjection renders a fault record without its scheduling
// artifacts (SM assignment, cycle stamp), which legitimately differ
// between tiers.
func faultProjection(rs []sim.FaultRecord) []string {
	out := make([]string, 0, len(rs))
	for _, r := range rs {
		out = append(out, fmt.Sprintf("warp%d lane%d pc=%d: %v", r.Warp, r.Lane, r.PC, r.Fault))
	}
	return out
}

// diffFunctional asserts the two tiers agree on the functional
// projection of a launch: instruction and lane-instruction counts,
// per-opcode memory instruction counts, OCU pointer checks, the
// ECChecked/ECElided split, halt status, and the fault records (their
// location and content, not their cycle stamps).
func diffFunctional(t *testing.T, label string, cycle, fast *sim.KernelStats) {
	t.Helper()
	type row struct {
		name   string
		cv, fv uint64
	}
	for _, r := range []row{
		{"Instrs", cycle.Instrs, fast.Instrs},
		{"ThreadInstrs", cycle.ThreadInstrs, fast.ThreadInstrs},
		{"PointerChecks", cycle.PointerChecks, fast.PointerChecks},
		{"ECChecked", cycle.ECChecked, fast.ECChecked},
		{"ECElided", cycle.ECElided, fast.ECElided},
	} {
		if r.cv != r.fv {
			t.Errorf("%s: %s diverges: cycle=%d compiled=%d", label, r.name, r.cv, r.fv)
		}
	}
	if cycle.Halted != fast.Halted {
		t.Errorf("%s: Halted diverges: cycle=%v compiled=%v", label, cycle.Halted, fast.Halted)
	}
	ops := map[isa.Opcode]bool{}
	for op := range cycle.MemInstrs {
		ops[op] = true
	}
	for op := range fast.MemInstrs {
		ops[op] = true
	}
	sorted := make([]isa.Opcode, 0, len(ops))
	for op := range ops {
		sorted = append(sorted, op)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, op := range sorted {
		if cycle.MemInstrs[op] != fast.MemInstrs[op] {
			t.Errorf("%s: MemInstrs[%s] diverges: cycle=%d compiled=%d",
				label, op, cycle.MemInstrs[op], fast.MemInstrs[op])
		}
	}
	cf, ff := faultProjection(cycle.Faults), faultProjection(fast.Faults)
	if len(cf) != len(ff) {
		t.Errorf("%s: fault count diverges: cycle=%d compiled=%d\ncycle: %v\ncompiled: %v",
			label, len(cf), len(ff), cf, ff)
		return
	}
	for i := range cf {
		if cf[i] != ff[i] {
			t.Errorf("%s: fault %d diverges:\ncycle:    %s\ncompiled: %s", label, i, cf[i], ff[i])
		}
	}
}

// corpusPrograms compiles the differential corpus for one benchmark:
// base and LMI modes, each pre- and post-Optimize, plus the
// statically-elided variant (the E-hint exerciser).
func corpusPrograms(t *testing.T, s *workloads.Spec) map[string]struct {
	prog *isa.Program
	v    workloads.Variant
} {
	t.Helper()
	out := map[string]struct {
		prog *isa.Program
		v    workloads.Variant
	}{}
	f, err := s.Kernel()
	if err != nil {
		t.Fatalf("%s: kernel: %v", s.Name, err)
	}
	for _, m := range []struct {
		name string
		mode compiler.Mode
		v    workloads.Variant
	}{
		{"base", compiler.ModeBase, workloads.VariantBase},
		{"lmi", compiler.ModeLMI, workloads.VariantLMI},
	} {
		p, err := compiler.Compile(f, m.mode)
		if err != nil {
			t.Fatalf("%s/%s: compile: %v", s.Name, m.name, err)
		}
		out[m.name] = struct {
			prog *isa.Program
			v    workloads.Variant
		}{p, m.v}
		out[m.name+"+opt"] = struct {
			prog *isa.Program
			v    workloads.Variant
		}{compiler.Optimize(p), m.v}
	}
	pe, _, err := compiler.CompileElided(f, s.Contract())
	if err != nil {
		t.Fatalf("%s/elide: compile: %v", s.Name, err)
	}
	out["elide"] = struct {
		prog *isa.Program
		v    workloads.Variant
	}{pe, workloads.VariantLMIElide}
	return out
}

// TestDifferentialWorkloadCorpus runs the full 28-benchmark corpus —
// base and LMI compiles, pre- and post-Optimize, plus the elided
// variant — through both execution tiers and asserts the functional
// projections are identical. This is the compiled tier's primary
// correctness gate (wired into scripts/check.sh).
func TestDifferentialWorkloadCorpus(t *testing.T) {
	specs := workloads.All()
	if testing.Short() {
		specs = []*workloads.Spec{
			workloads.ByName("bert"),
			workloads.ByName("lud_cuda"),
			workloads.ByName("particlefilter_float"),
			workloads.ByName("sc_gpu"),
		}
	}
	cfg := sim.ScaledConfig(2)
	for _, s := range specs {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			for name, c := range corpusPrograms(t, s) {
				cycle, fast := launchBoth(t, c.prog, c.v, cfg, s.Grid, s.Block, s.N)
				diffFunctional(t, s.Name+"/"+name, cycle, fast)
			}
		})
	}
}
