package fastsim_test

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"testing"

	"lmi/internal/compiler"
	"lmi/internal/fastsim"
	"lmi/internal/ir"
	"lmi/internal/isa"
	"lmi/internal/sim"
	"lmi/internal/workloads"
)

// launchBoth runs one program on a fresh device per tier (identical
// config, mechanism, and allocations) and returns both outcomes.
func launchBoth(t *testing.T, prog *isa.Program, v workloads.Variant, cfg sim.Config, grid, block int, n uint64) (cycle, fast *sim.KernelStats) {
	t.Helper()
	run := func(tier fastsim.Tier) *sim.KernelStats {
		dev, err := sim.NewDevice(cfg, workloads.NewMechanism(v))
		if err != nil {
			t.Fatalf("device: %v", err)
		}
		bytes := n * 4
		in, err := dev.Malloc(bytes)
		if err != nil {
			t.Fatalf("malloc: %v", err)
		}
		out, err := dev.Malloc(bytes)
		if err != nil {
			t.Fatalf("malloc: %v", err)
		}
		st, err := fastsim.LaunchTierCtx(context.Background(), tier, dev, prog, grid, block, []uint64{in, out, n})
		if err != nil {
			t.Fatalf("%v tier: %v", tier, err)
		}
		return st
	}
	return run(fastsim.TierCycle), run(fastsim.TierCompiled)
}

// faultProjection renders a fault record without its scheduling
// artifacts (SM assignment, cycle stamp), which legitimately differ
// between tiers.
func faultProjection(rs []sim.FaultRecord) []string {
	out := make([]string, 0, len(rs))
	for _, r := range rs {
		out = append(out, fmt.Sprintf("warp%d lane%d pc=%d: %v", r.Warp, r.Lane, r.PC, r.Fault))
	}
	return out
}

// diffFunctional asserts the two tiers agree on the functional
// projection of a launch: instruction and lane-instruction counts,
// per-opcode memory instruction counts, OCU pointer checks, the
// ECChecked/ECElided split, halt status, and the fault records (their
// location and content, not their cycle stamps).
func diffFunctional(t *testing.T, label string, cycle, fast *sim.KernelStats) {
	t.Helper()
	type row struct {
		name   string
		cv, fv uint64
	}
	for _, r := range []row{
		{"Instrs", cycle.Instrs, fast.Instrs},
		{"ThreadInstrs", cycle.ThreadInstrs, fast.ThreadInstrs},
		{"PointerChecks", cycle.PointerChecks, fast.PointerChecks},
		{"ECChecked", cycle.ECChecked, fast.ECChecked},
		{"ECElided", cycle.ECElided, fast.ECElided},
		{"SharedShadowed", cycle.SharedShadowed, fast.SharedShadowed},
	} {
		if r.cv != r.fv {
			t.Errorf("%s: %s diverges: cycle=%d compiled=%d", label, r.name, r.cv, r.fv)
		}
	}
	if cycle.Halted != fast.Halted {
		t.Errorf("%s: Halted diverges: cycle=%v compiled=%v", label, cycle.Halted, fast.Halted)
	}
	ops := map[isa.Opcode]bool{}
	for op := range cycle.MemInstrs {
		ops[op] = true
	}
	for op := range fast.MemInstrs {
		ops[op] = true
	}
	sorted := make([]isa.Opcode, 0, len(ops))
	for op := range ops {
		sorted = append(sorted, op)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, op := range sorted {
		if cycle.MemInstrs[op] != fast.MemInstrs[op] {
			t.Errorf("%s: MemInstrs[%s] diverges: cycle=%d compiled=%d",
				label, op, cycle.MemInstrs[op], fast.MemInstrs[op])
		}
	}
	// The race oracle's deduplicated findings are part of the functional
	// projection: order-insensitive per-epoch detection makes them
	// interleaving-independent, so the tiers must agree exactly.
	if len(cycle.Races) != len(fast.Races) {
		t.Errorf("%s: race count diverges: cycle=%v compiled=%v", label, cycle.Races, fast.Races)
	} else {
		for i := range cycle.Races {
			if cycle.Races[i] != fast.Races[i] {
				t.Errorf("%s: race %d diverges: cycle=%+v compiled=%+v",
					label, i, cycle.Races[i], fast.Races[i])
			}
		}
	}
	cf, ff := faultProjection(cycle.Faults), faultProjection(fast.Faults)
	if len(cf) != len(ff) {
		t.Errorf("%s: fault count diverges: cycle=%d compiled=%d\ncycle: %v\ncompiled: %v",
			label, len(cf), len(ff), cf, ff)
		return
	}
	for i := range cf {
		if cf[i] != ff[i] {
			t.Errorf("%s: fault %d diverges:\ncycle:    %s\ncompiled: %s", label, i, cf[i], ff[i])
		}
	}
}

// corpusPrograms compiles the differential corpus for one benchmark:
// base and LMI modes, each pre- and post-Optimize, plus the
// statically-elided variant (the E-hint exerciser).
func corpusPrograms(t *testing.T, s *workloads.Spec) map[string]struct {
	prog *isa.Program
	v    workloads.Variant
} {
	t.Helper()
	out := map[string]struct {
		prog *isa.Program
		v    workloads.Variant
	}{}
	f, err := s.Kernel()
	if err != nil {
		t.Fatalf("%s: kernel: %v", s.Name, err)
	}
	for _, m := range []struct {
		name string
		mode compiler.Mode
		v    workloads.Variant
	}{
		{"base", compiler.ModeBase, workloads.VariantBase},
		{"lmi", compiler.ModeLMI, workloads.VariantLMI},
	} {
		p, err := compiler.Compile(f, m.mode)
		if err != nil {
			t.Fatalf("%s/%s: compile: %v", s.Name, m.name, err)
		}
		out[m.name] = struct {
			prog *isa.Program
			v    workloads.Variant
		}{p, m.v}
		out[m.name+"+opt"] = struct {
			prog *isa.Program
			v    workloads.Variant
		}{compiler.Optimize(p), m.v}
	}
	pe, _, err := compiler.CompileElided(f, s.Contract())
	if err != nil {
		t.Fatalf("%s/elide: compile: %v", s.Name, err)
	}
	out["elide"] = struct {
		prog *isa.Program
		v    workloads.Variant
	}{pe, workloads.VariantLMIElide}
	return out
}

// atomicContentionKernel hammers shared and global atomics from every
// warp: each thread ATOMS-adds 1 into one of four shared slots picked
// by tid&3 (so all warps of a block collide on the same four words) and
// ATOMG-adds 1 into out[0] (so all blocks collide on one global word),
// then four threads publish the per-slot shared tallies.
func atomicContentionKernel() *ir.Func {
	b := ir.NewBuilder("atomic_contention")
	b.Param(ir.PtrGlobal) // in (unused, keeps the corpus param shape)
	out := b.Param(ir.PtrGlobal)
	b.Param(ir.I32) // n
	sh := b.Shared(4 * 4)
	tid := b.TID()
	one := b.ConstI(ir.I32, 1)
	slot := b.And(tid, b.ConstI(ir.I32, 3))
	b.AtomicAdd(b.GEP(sh, slot, 4, 0), one, 0)
	b.AtomicAdd(out, one, 0)
	b.Barrier()
	b.If(b.ICmp(isa.CmpLT, tid, b.ConstI(ir.I32, 4)), func() {
		v := b.Load(ir.I32, b.GEP(sh, tid, 4, 0), 0)
		b.Store(b.GEP(out, b.Add(tid, one), 4, 0), v, 0)
	}, nil)
	return b.MustFinish()
}

// TestDifferentialAtomicContention runs the contention kernel with
// multiple warps per block through both tiers, in base and LMI modes,
// and checks (a) the functional projections agree, (b) the armed race
// oracle stays silent in both tiers (atomic-atomic pairs commute), and
// (c) the atomics actually resolved to the exact expected tallies.
func TestDifferentialAtomicContention(t *testing.T) {
	const grid, block, n = 2, 128, 8
	f := atomicContentionKernel()
	cfg := sim.ScaledConfig(2)
	cfg.RaceOracle = true
	for _, m := range []struct {
		name string
		mode compiler.Mode
		v    workloads.Variant
	}{
		{"base", compiler.ModeBase, workloads.VariantBase},
		{"lmi", compiler.ModeLMI, workloads.VariantLMI},
	} {
		prog, err := compiler.Compile(f, m.mode)
		if err != nil {
			t.Fatalf("%s: compile: %v", m.name, err)
		}
		for _, tier := range []fastsim.Tier{fastsim.TierCycle, fastsim.TierCompiled} {
			dev, err := sim.NewDevice(cfg, workloads.NewMechanism(m.v))
			if err != nil {
				t.Fatalf("device: %v", err)
			}
			in, _ := dev.Malloc(n * 4)
			outp, _ := dev.Malloc(n * 4)
			st, err := fastsim.LaunchTierCtx(context.Background(), tier, dev, prog, grid, block, []uint64{in, outp, n})
			if err != nil {
				t.Fatalf("%s/%v: launch: %v", m.name, tier, err)
			}
			if st.Halted {
				t.Fatalf("%s/%v: halted: %+v", m.name, tier, st.Faults)
			}
			if len(st.Races) != 0 {
				t.Errorf("%s/%v: atomic-atomic contention misreported as race: %+v", m.name, tier, st.Races)
			}
			if st.SharedShadowed == 0 {
				t.Errorf("%s/%v: oracle saw no shared accesses; the gate is vacuous", m.name, tier)
			}
			raw := dev.ReadGlobal(outp, n*4)
			words := make([]uint32, n)
			for i := range words {
				words[i] = binary.LittleEndian.Uint32(raw[i*4:])
			}
			if words[0] != grid*block {
				t.Errorf("%s/%v: global tally = %d, want %d", m.name, tier, words[0], grid*block)
			}
			for slot := 1; slot <= 4; slot++ {
				if words[slot] != block/4 {
					t.Errorf("%s/%v: shared slot %d tally = %d, want %d",
						m.name, tier, slot-1, words[slot], block/4)
				}
			}
			if tier == fastsim.TierCycle {
				// Cross-tier agreement on the projection is asserted by
				// re-running the compiled tier against these stats below.
				cycleStats := st
				dev2, err := sim.NewDevice(cfg, workloads.NewMechanism(m.v))
				if err != nil {
					t.Fatalf("device: %v", err)
				}
				in2, _ := dev2.Malloc(n * 4)
				out2, _ := dev2.Malloc(n * 4)
				fastStats, err := fastsim.LaunchTierCtx(context.Background(), fastsim.TierCompiled, dev2, prog, grid, block, []uint64{in2, out2, n})
				if err != nil {
					t.Fatalf("%s/compiled: launch: %v", m.name, err)
				}
				diffFunctional(t, m.name+"/contention", cycleStats, fastStats)
			}
		}
	}
}

// TestDifferentialWorkloadCorpus runs the full 28-benchmark corpus —
// base and LMI compiles, pre- and post-Optimize, plus the elided
// variant — through both execution tiers and asserts the functional
// projections are identical. This is the compiled tier's primary
// correctness gate (wired into scripts/check.sh).
func TestDifferentialWorkloadCorpus(t *testing.T) {
	specs := workloads.All()
	if testing.Short() {
		specs = []*workloads.Spec{
			workloads.ByName("bert"),
			workloads.ByName("lud_cuda"),
			workloads.ByName("particlefilter_float"),
			workloads.ByName("sc_gpu"),
		}
	}
	cfg := sim.ScaledConfig(2)
	// Arm the dynamic race oracle in both tiers: the whole corpus is
	// proved race-free statically (internal/race's corpus gate), so the
	// oracle must agree — zero findings in either tier — which is the
	// dynamic half of the differential validation.
	cfg.RaceOracle = true
	for _, s := range specs {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			for name, c := range corpusPrograms(t, s) {
				cycle, fast := launchBoth(t, c.prog, c.v, cfg, s.Grid, s.Block, s.N)
				diffFunctional(t, s.Name+"/"+name, cycle, fast)
				if !cycle.Halted && len(cycle.Races) != 0 {
					t.Errorf("%s/%s: statically race-free workload raced dynamically: %+v",
						s.Name, name, cycle.Races)
				}
			}
		})
	}
}
