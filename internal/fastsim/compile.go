package fastsim

import (
	"fmt"
	"math"
	"math/bits"

	"lmi/internal/isa"
)

// sx32 sign-extends a 32-bit value into the 64-bit register convention
// (i32 values live sign-extended in 64-bit registers), mirroring the
// cycle simulator.
func sx32(x int32) uint64 { return uint64(int64(x)) }

func f32bits(v uint64) float32 { return math.Float32frombits(uint32(v)) }
func bitsf32(f float32) uint64 { return uint64(math.Float32bits(f)) }

// opFn is one compiled instruction: it executes the instruction for a
// warp given the block-entry active mask and returns the exec mask
// (active lanes whose guard predicate held), which the engine uses for
// tracing. Closures update engine statistics exactly the way the cycle
// simulator's issue path does.
type opFn func(e *engine, w *fwarp, active uint32) uint32

// guardFn resolves an instruction's guard predicate against a warp's
// predicate file. Compiled once per instruction: the unconditional (@PT)
// form — the overwhelmingly common case — is the identity.
type guardFn func(w *fwarp, active uint32) uint32

// srcFn reads one routed source operand from a lane's register file.
// The routing decision (register vs immediate form vs hardwired RZ) is
// made at compile time via the ISA's ImmSrcIndex table.
type srcFn func(regs []uint64) uint64

func zeroSrc([]uint64) uint64 { return 0 }

func regSrc(r isa.Reg) srcFn {
	if r == isa.RZ {
		return zeroSrc
	}
	return func(regs []uint64) uint64 { return regs[r] }
}

func immSrc(v uint64) srcFn { return func([]uint64) uint64 { return v } }

// termKind classifies how a basic block ends.
type termKind uint8

const (
	// termFall falls through to the next leader (no instruction).
	termFall termKind = iota
	// termBRA is a (possibly divergent) branch.
	termBRA
	// termEXIT retires the exec lanes.
	termEXIT
	// termBAR parks the warp at the block barrier.
	termBAR
)

// bblock is one compiled basic block: a run of straight-line instruction
// closures plus a terminator. Reconvergence (the rpc check) only needs
// to run at block entry: every reconvergence point is an SSY target and
// therefore a leader, so no pc inside a block body can be an rpc.
type bblock struct {
	start int    // pc of the first body instruction
	body  []opFn // one closure per straight-line instruction
	ops   []isa.Opcode
	hintA []bool

	term      termKind
	termPC    int // pc of the terminator instruction (BRA/EXIT/BAR)
	termOp    isa.Opcode
	termGuard guardFn
	target    int32 // BRA branch target
	next      int32 // pc after the block (fallthrough / resume point)
}

// Compiled is a kernel compiled to basic-block-level closures, ready to
// launch on the fast-path tier any number of times.
type Compiled struct {
	prog    *isa.Program // shadow program holding the decoded stream
	blocks  []bblock
	blockOf []int32 // leader pc -> block index, -1 elsewhere
}

// Compile compiles a program for the fast-path tier. The instruction
// stream is round-tripped through its 128-bit microcode encoding so the
// compiled tier consumes exactly what the hardware would: each word is
// decoded once, here, and never again at execution time.
func Compile(p *isa.Program) (*Compiled, error) {
	words, err := isa.EncodeProgram(p)
	if err != nil {
		return nil, err
	}
	return CompileWords(p, words)
}

// CompileWords compiles a program whose instruction stream is supplied
// as raw 128-bit microcode words — the decode boundary of the compiled
// tier. Metadata (frame, registers, parameter layout) comes from p; the
// instruction stream comes solely from words. Malformed words —
// reserved bits outside the E/A/S hint positions, invalid opcodes — are
// rejected with the decoder's positioned errors ("isa: word %d: ...").
func CompileWords(p *isa.Program, words []isa.Word) (*Compiled, error) {
	instrs, err := isa.DecodeProgram(words)
	if err != nil {
		return nil, err
	}
	shadow := *p
	shadow.Instrs = instrs
	if err := shadow.Validate(); err != nil {
		return nil, err
	}
	cc := &compiler{prog: &shadow}
	return cc.compile()
}

// compiler carries per-compilation state.
type compiler struct {
	prog *isa.Program
	// ptWritable reports whether any instruction writes predicate 7
	// (PT). The cycle simulator stores PT in the ordinary predicate file,
	// so a guest program *can* overwrite it; the @PT guard fast path is
	// only sound when nothing does.
	ptWritable bool
}

func (cc *compiler) compile() (*Compiled, error) {
	instrs := cc.prog.Instrs
	n := len(instrs)
	for i := range instrs {
		in := &instrs[i]
		if (in.Op == isa.SETP || in.Op == isa.FSETP) && isa.PredReg(in.Dst&7) == isa.PT {
			cc.ptWritable = true
		}
	}

	// Leaders: entry, branch and SSY (reconvergence) targets, and the
	// instruction after every control transfer.
	leader := make([]bool, n+1)
	leader[0] = true
	for i := range instrs {
		switch in := &instrs[i]; in.Op {
		case isa.BRA:
			leader[in.Target] = true
			leader[i+1] = true
		case isa.SSY:
			leader[in.Target] = true
		case isa.EXIT, isa.BAR:
			leader[i+1] = true
		}
	}

	c := &Compiled{prog: cc.prog, blockOf: make([]int32, n+1)}
	for i := range c.blockOf {
		c.blockOf[i] = -1
	}
	i := 0
	for i < n {
		blk := bblock{start: i, term: termFall}
		c.blockOf[i] = int32(len(c.blocks))
		for i < n {
			in := &instrs[i]
			if in.Op == isa.BRA || in.Op == isa.EXIT || in.Op == isa.BAR {
				blk.termPC = i
				blk.termOp = in.Op
				blk.termGuard = cc.guard(in)
				blk.target = in.Target
				blk.next = int32(i) + 1
				switch in.Op {
				case isa.BRA:
					blk.term = termBRA
				case isa.EXIT:
					blk.term = termEXIT
				case isa.BAR:
					blk.term = termBAR
				}
				i++
				break
			}
			fn, err := cc.instrClosure(in, i)
			if err != nil {
				return nil, err
			}
			blk.body = append(blk.body, fn)
			blk.ops = append(blk.ops, in.Op)
			blk.hintA = append(blk.hintA, in.Hint.A)
			i++
			blk.next = int32(i)
			if i < n && leader[i] {
				break
			}
		}
		c.blocks = append(c.blocks, blk)
	}
	return c, nil
}

// guard compiles an instruction's guard predicate. @PT (and nothing in
// the program writing PT) compiles to the identity.
func (cc *compiler) guard(in *isa.Instr) guardFn {
	p := in.Pred & 7
	if p == isa.PT && !in.PredNeg && !cc.ptWritable {
		return func(_ *fwarp, active uint32) uint32 { return active }
	}
	if in.PredNeg {
		return func(w *fwarp, active uint32) uint32 { return active &^ w.preds[p] }
	}
	return func(w *fwarp, active uint32) uint32 { return active & w.preds[p] }
}

// operand compiles source operand i with the immediate-form routing the
// cycle simulator applies: when the instruction is in immediate form and
// i is the operand the opcode's immediate replaces (the ImmSrcIndex
// table), the sign-extended immediate is baked in; otherwise the operand
// reads its register (RZ hardwired to zero).
func (cc *compiler) operand(in *isa.Instr, i int) srcFn {
	if in.HasImm && in.Op.ImmSrcIndex() == i {
		return immSrc(sx32(in.Imm))
	}
	return regSrc(in.Src[i])
}

// Compile-time operand forms, used to specialise the hot integer ALU
// ops (the addressing backbone: MOV/IADD/IADD3/IMAD/SHL and SETP) so
// their per-lane computation reads registers and immediates directly
// instead of chaining srcFn calls.
const (
	formZero = iota // hardwired RZ
	formReg
	formImm
)

// srcForm classifies routed source operand i with the same routing as
// operand.
func (cc *compiler) srcForm(in *isa.Instr, i int) (kind int, r isa.Reg, imm uint64) {
	if in.HasImm && in.Op.ImmSrcIndex() == i {
		return formImm, 0, sx32(in.Imm)
	}
	if in.Src[i] == isa.RZ {
		return formZero, 0, 0
	}
	return formReg, in.Src[i], 0
}

// laneVal computes an ALU result for one lane.
type laneVal func(w *fwarp, regs []uint64, lane int) uint64

// fusedAdd compiles an unhinted register-writing IADD in its dominant
// operand forms all the way down to a dedicated lane loop — IADD is
// the single hottest opcode, so it alone earns closures with no
// laneVal indirection at all. Returns nil when the form is not one of
// the fused ones (intClosure handles it then).
func (cc *compiler) fusedAdd(in *isa.Instr, g guardFn) opFn {
	if in.Hint.A || !in.WritesDst() || in.Dst == isa.RZ {
		return nil
	}
	w64 := in.W64()
	aK, aR, _ := cc.srcForm(in, 0)
	bK, bR, bI := cc.srcForm(in, 1)
	di, ai, bi := int(in.Dst), int(aR), int(bR)
	switch {
	case aK == formReg && bK == formImm && w64:
		return func(e *engine, w *fwarp, active uint32) uint32 {
			exec := g(w, active)
			e.count(exec)
			rf, nr := w.rf, w.nregs
			for m := exec; m != 0; m &= m - 1 {
				base := bits.TrailingZeros32(m) * nr
				rf[base+di] = rf[base+ai] + bI
			}
			return exec
		}
	case aK == formReg && bK == formImm:
		return func(e *engine, w *fwarp, active uint32) uint32 {
			exec := g(w, active)
			e.count(exec)
			rf, nr := w.rf, w.nregs
			for m := exec; m != 0; m &= m - 1 {
				base := bits.TrailingZeros32(m) * nr
				rf[base+di] = sx32(int32(rf[base+ai] + bI))
			}
			return exec
		}
	case aK == formReg && bK == formReg && w64:
		return func(e *engine, w *fwarp, active uint32) uint32 {
			exec := g(w, active)
			e.count(exec)
			rf, nr := w.rf, w.nregs
			for m := exec; m != 0; m &= m - 1 {
				base := bits.TrailingZeros32(m) * nr
				rf[base+di] = rf[base+ai] + rf[base+bi]
			}
			return exec
		}
	case aK == formReg && bK == formReg:
		return func(e *engine, w *fwarp, active uint32) uint32 {
			exec := g(w, active)
			e.count(exec)
			rf, nr := w.rf, w.nregs
			for m := exec; m != 0; m &= m - 1 {
				base := bits.TrailingZeros32(m) * nr
				rf[base+di] = sx32(int32(rf[base+ai] + rf[base+bi]))
			}
			return exec
		}
	}
	return nil
}

// addVal compiles IADD's lane computation, inlining the dominant
// reg+imm and reg+reg forms.
func (cc *compiler) addVal(in *isa.Instr) laneVal {
	aK, aR, _ := cc.srcForm(in, 0)
	bK, bR, bI := cc.srcForm(in, 1)
	switch {
	case aK == formReg && bK == formImm:
		return func(_ *fwarp, regs []uint64, _ int) uint64 { return regs[aR] + bI }
	case aK == formReg && bK == formReg:
		return func(_ *fwarp, regs []uint64, _ int) uint64 { return regs[aR] + regs[bR] }
	case aK == formReg && bK == formZero:
		return func(_ *fwarp, regs []uint64, _ int) uint64 { return regs[aR] }
	}
	a, b := cc.operand(in, 0), cc.operand(in, 1)
	return func(_ *fwarp, regs []uint64, _ int) uint64 { return a(regs) + b(regs) }
}

// add3Val compiles IADD3's lane computation, inlining the all-register
// and reg+reg+imm forms.
func (cc *compiler) add3Val(in *isa.Instr) laneVal {
	aK, aR, _ := cc.srcForm(in, 0)
	bK, bR, _ := cc.srcForm(in, 1)
	cK, cR, cI := cc.srcForm(in, 2)
	if aK == formReg && bK == formReg {
		switch cK {
		case formReg:
			return func(_ *fwarp, regs []uint64, _ int) uint64 {
				return regs[aR] + regs[bR] + regs[cR]
			}
		case formImm:
			return func(_ *fwarp, regs []uint64, _ int) uint64 {
				return regs[aR] + regs[bR] + cI
			}
		}
	}
	a, b, c := cc.operand(in, 0), cc.operand(in, 1), cc.operand(in, 2)
	return func(_ *fwarp, regs []uint64, _ int) uint64 { return a(regs) + b(regs) + c(regs) }
}

// madVal compiles IMAD's lane computation, inlining the reg*imm+reg
// (strided addressing) and all-register forms.
func (cc *compiler) madVal(in *isa.Instr) laneVal {
	aK, aR, _ := cc.srcForm(in, 0)
	bK, bR, bI := cc.srcForm(in, 1)
	cK, cR, _ := cc.srcForm(in, 2)
	if aK == formReg && cK == formReg {
		switch bK {
		case formImm:
			k := int64(bI)
			return func(_ *fwarp, regs []uint64, _ int) uint64 {
				return uint64(int64(regs[aR])*k + int64(regs[cR]))
			}
		case formReg:
			return func(_ *fwarp, regs []uint64, _ int) uint64 {
				return uint64(int64(regs[aR])*int64(regs[bR]) + int64(regs[cR]))
			}
		}
	}
	a, b, c := cc.operand(in, 0), cc.operand(in, 1), cc.operand(in, 2)
	return func(_ *fwarp, regs []uint64, _ int) uint64 {
		return uint64(int64(a(regs))*int64(b(regs)) + int64(c(regs)))
	}
}

// instrClosure compiles one straight-line (non-control-transfer)
// instruction.
func (cc *compiler) instrClosure(in *isa.Instr, pc int) (opFn, error) {
	g := cc.guard(in)
	switch in.Op {
	case isa.NOP, isa.SYNC:
		// SYNC is a no-op: reconvergence is driven by the rpc check.
		return func(e *engine, w *fwarp, active uint32) uint32 {
			exec := g(w, active)
			e.count(exec)
			return exec
		}, nil
	case isa.SSY:
		target := in.Target
		return func(e *engine, w *fwarp, active uint32) uint32 {
			exec := g(w, active)
			e.count(exec)
			w.pendingSSY = target
			return exec
		}, nil
	case isa.MOV:
		if k, r, imm := cc.srcForm(in, 0); !in.Hint.A && in.WritesDst() && in.Dst != isa.RZ && k != formZero {
			// Fused register/immediate move (MOV is always 32-bit-narrowed
			// unless W64, and immediates/registers are pre-narrowed
			// consistently, so narrowing folds into the baked value).
			di, ri := int(in.Dst), int(r)
			w64 := in.W64()
			if k == formImm {
				if !w64 {
					imm = sx32(int32(imm))
				}
				return func(e *engine, w *fwarp, active uint32) uint32 {
					exec := g(w, active)
					e.count(exec)
					rf, nr := w.rf, w.nregs
					for m := exec; m != 0; m &= m - 1 {
						rf[bits.TrailingZeros32(m)*nr+di] = imm
					}
					return exec
				}, nil
			}
			if w64 {
				return func(e *engine, w *fwarp, active uint32) uint32 {
					exec := g(w, active)
					e.count(exec)
					rf, nr := w.rf, w.nregs
					for m := exec; m != 0; m &= m - 1 {
						base := bits.TrailingZeros32(m) * nr
						rf[base+di] = rf[base+ri]
					}
					return exec
				}, nil
			}
			return func(e *engine, w *fwarp, active uint32) uint32 {
				exec := g(w, active)
				e.count(exec)
				rf, nr := w.rf, w.nregs
				for m := exec; m != 0; m &= m - 1 {
					base := bits.TrailingZeros32(m) * nr
					rf[base+di] = sx32(int32(rf[base+ri]))
				}
				return exec
			}, nil
		}
		a := cc.operand(in, 0)
		return cc.intClosure(in, g, func(_ *fwarp, regs []uint64, _ int) uint64 {
			return a(regs)
		}), nil
	case isa.IADD:
		if fn := cc.fusedAdd(in, g); fn != nil {
			return fn, nil
		}
		return cc.intClosure(in, g, cc.addVal(in)), nil
	case isa.IADD3:
		return cc.intClosure(in, g, cc.add3Val(in)), nil
	case isa.IMUL:
		a, b := cc.operand(in, 0), cc.operand(in, 1)
		return cc.intClosure(in, g, func(_ *fwarp, regs []uint64, _ int) uint64 {
			return uint64(int64(a(regs)) * int64(b(regs)))
		}), nil
	case isa.IMAD:
		return cc.intClosure(in, g, cc.madVal(in)), nil
	case isa.IMNMX:
		a, b := cc.operand(in, 0), cc.operand(in, 1)
		isMax := in.Aux == 1
		return cc.intClosure(in, g, func(_ *fwarp, regs []uint64, _ int) uint64 {
			av, bv := int64(a(regs)), int64(b(regs))
			if isMax == (av > bv) {
				return uint64(av)
			}
			return uint64(bv)
		}), nil
	case isa.SHL:
		// Shift-by-immediate of a register is the dominant form (address
		// scaling); fuse it into a dedicated lane loop for both widths.
		if aK, aR, _ := cc.srcForm(in, 0); aK == formReg && !in.Hint.A &&
			in.WritesDst() && in.Dst != isa.RZ {
			if bK, _, bI := cc.srcForm(in, 1); bK == formImm {
				di, ai := int(in.Dst), int(aR)
				if in.W64() {
					sh := bI & 63
					return func(e *engine, w *fwarp, active uint32) uint32 {
						exec := g(w, active)
						e.count(exec)
						rf, nr := w.rf, w.nregs
						for m := exec; m != 0; m &= m - 1 {
							base := bits.TrailingZeros32(m) * nr
							rf[base+di] = rf[base+ai] << sh
						}
						return exec
					}, nil
				}
				sh := bI & 31
				return func(e *engine, w *fwarp, active uint32) uint32 {
					exec := g(w, active)
					e.count(exec)
					rf, nr := w.rf, w.nregs
					for m := exec; m != 0; m &= m - 1 {
						base := bits.TrailingZeros32(m) * nr
						rf[base+di] = sx32(int32(uint32(rf[base+ai]) << sh))
					}
					return exec
				}, nil
			}
		}
		a, b := cc.operand(in, 0), cc.operand(in, 1)
		if in.W64() {
			return cc.intClosure(in, g, func(_ *fwarp, regs []uint64, _ int) uint64 {
				return a(regs) << (b(regs) & 63)
			}), nil
		}
		return cc.intClosure(in, g, func(_ *fwarp, regs []uint64, _ int) uint64 {
			return uint64(uint32(a(regs)) << (b(regs) & 31))
		}), nil
	case isa.SHR:
		a, b := cc.operand(in, 0), cc.operand(in, 1)
		if in.W64() {
			return cc.intClosure(in, g, func(_ *fwarp, regs []uint64, _ int) uint64 {
				return a(regs) >> (b(regs) & 63)
			}), nil
		}
		// 32-bit logical shift (the narrowing in intClosure sign-extends
		// the 32-bit result into the register).
		return cc.intClosure(in, g, func(_ *fwarp, regs []uint64, _ int) uint64 {
			return uint64(uint32(a(regs)) >> (b(regs) & 31))
		}), nil
	case isa.AND:
		a, b := cc.operand(in, 0), cc.operand(in, 1)
		return cc.intClosure(in, g, func(_ *fwarp, regs []uint64, _ int) uint64 {
			return a(regs) & b(regs)
		}), nil
	case isa.OR:
		a, b := cc.operand(in, 0), cc.operand(in, 1)
		return cc.intClosure(in, g, func(_ *fwarp, regs []uint64, _ int) uint64 {
			return a(regs) | b(regs)
		}), nil
	case isa.XOR:
		a, b := cc.operand(in, 0), cc.operand(in, 1)
		return cc.intClosure(in, g, func(_ *fwarp, regs []uint64, _ int) uint64 {
			return a(regs) ^ b(regs)
		}), nil
	case isa.SEL:
		a, b := cc.operand(in, 0), cc.operand(in, 1)
		sel := in.Aux & 7
		return cc.intClosure(in, g, func(w *fwarp, regs []uint64, lane int) uint64 {
			if w.preds[sel]&(1<<uint(lane)) != 0 {
				return a(regs)
			}
			return b(regs)
		}), nil
	case isa.SETP:
		pd := in.Dst & 7
		cmp := isa.CmpOp(in.Aux)
		// Loop-condition SETPs are hot: specialise the reg-vs-imm and
		// reg-vs-reg forms to direct register reads.
		aK, aR, _ := cc.srcForm(in, 0)
		bK, bR, bI := cc.srcForm(in, 1)
		switch {
		case aK == formReg && bK == formImm:
			k := int64(bI)
			ai := int(aR)
			return func(e *engine, w *fwarp, active uint32) uint32 {
				exec := g(w, active)
				e.count(exec)
				rf, nr := w.rf, w.nregs
				var set uint32
				for m := exec; m != 0; m &= m - 1 {
					lane := bits.TrailingZeros32(m)
					if cmpSigned(cmp, int64(rf[lane*nr+ai]), k) {
						set |= 1 << uint(lane)
					}
				}
				w.preds[pd] = w.preds[pd]&^exec | set
				return exec
			}, nil
		case aK == formReg && bK == formReg:
			ai, bi := int(aR), int(bR)
			return func(e *engine, w *fwarp, active uint32) uint32 {
				exec := g(w, active)
				e.count(exec)
				rf, nr := w.rf, w.nregs
				var set uint32
				for m := exec; m != 0; m &= m - 1 {
					lane := bits.TrailingZeros32(m)
					base := lane * nr
					if cmpSigned(cmp, int64(rf[base+ai]), int64(rf[base+bi])) {
						set |= 1 << uint(lane)
					}
				}
				w.preds[pd] = w.preds[pd]&^exec | set
				return exec
			}, nil
		}
		a, b := cc.operand(in, 0), cc.operand(in, 1)
		return func(e *engine, w *fwarp, active uint32) uint32 {
			exec := g(w, active)
			e.count(exec)
			rf, nr := w.rf, w.nregs
			var set uint32
			for m := exec; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				regs := rf[lane*nr : lane*nr+nr]
				if cmpSigned(cmp, int64(a(regs)), int64(b(regs))) {
					set |= 1 << uint(lane)
				}
			}
			w.preds[pd] = w.preds[pd]&^exec | set
			return exec
		}, nil
	case isa.FSETP:
		a, b := cc.operand(in, 0), cc.operand(in, 1)
		pd := in.Dst & 7
		cmp := isa.CmpOp(in.Aux)
		return func(e *engine, w *fwarp, active uint32) uint32 {
			exec := g(w, active)
			e.count(exec)
			rf, nr := w.rf, w.nregs
			var set uint32
			for m := exec; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				regs := rf[lane*nr : lane*nr+nr]
				if cmpF32(cmp, f32bits(a(regs)), f32bits(b(regs))) {
					set |= 1 << uint(lane)
				}
			}
			w.preds[pd] = w.preds[pd]&^exec | set
			return exec
		}, nil
	case isa.FADD:
		if aK, aR, _ := cc.srcForm(in, 0); aK == formReg {
			if bK, bR, _ := cc.srcForm(in, 1); bK == formReg {
				return cc.fpClosure(in, g, func(regs []uint64) uint64 {
					return bitsf32(f32bits(regs[aR]) + f32bits(regs[bR]))
				}), nil
			}
		}
		a, b := cc.operand(in, 0), cc.operand(in, 1)
		return cc.fpClosure(in, g, func(regs []uint64) uint64 {
			return bitsf32(f32bits(a(regs)) + f32bits(b(regs)))
		}), nil
	case isa.FMUL:
		if aK, aR, _ := cc.srcForm(in, 0); aK == formReg {
			if bK, bR, _ := cc.srcForm(in, 1); bK == formReg {
				return cc.fpClosure(in, g, func(regs []uint64) uint64 {
					return bitsf32(f32bits(regs[aR]) * f32bits(regs[bR]))
				}), nil
			}
		}
		a, b := cc.operand(in, 0), cc.operand(in, 1)
		return cc.fpClosure(in, g, func(regs []uint64) uint64 {
			return bitsf32(f32bits(a(regs)) * f32bits(b(regs)))
		}), nil
	case isa.FFMA:
		aK, aR, _ := cc.srcForm(in, 0)
		bK, bR, _ := cc.srcForm(in, 1)
		cK, cR, _ := cc.srcForm(in, 2)
		if aK == formReg && bK == formReg && cK == formReg {
			return cc.fpClosure(in, g, func(regs []uint64) uint64 {
				return bitsf32(f32bits(regs[aR])*f32bits(regs[bR]) + f32bits(regs[cR]))
			}), nil
		}
		a, b, c := cc.operand(in, 0), cc.operand(in, 1), cc.operand(in, 2)
		return cc.fpClosure(in, g, func(regs []uint64) uint64 {
			return bitsf32(f32bits(a(regs))*f32bits(b(regs)) + f32bits(c(regs)))
		}), nil
	case isa.MUFU:
		a := regSrc(in.Src[0])
		fn := isa.MufuFn(in.Aux)
		return cc.fpClosure(in, g, func(regs []uint64) uint64 {
			x := f32bits(a(regs))
			switch fn {
			case isa.MufuRCP:
				return bitsf32(1 / x)
			case isa.MufuSQRT:
				return bitsf32(float32(math.Sqrt(float64(x))))
			case isa.MufuEX2:
				return bitsf32(float32(math.Exp2(float64(x))))
			case isa.MufuLG2:
				return bitsf32(float32(math.Log2(float64(x))))
			case isa.MufuSIN:
				return bitsf32(float32(math.Sin(float64(x))))
			default:
				return 0
			}
		}), nil
	case isa.F2I:
		// The cycle simulator reads the register form regardless of
		// HasImm for F2I/I2F; mirror it.
		a := regSrc(in.Src[0])
		return cc.fpClosure(in, g, func(regs []uint64) uint64 {
			return sx32(int32(f32bits(a(regs))))
		}), nil
	case isa.I2F:
		a := regSrc(in.Src[0])
		return cc.fpClosure(in, g, func(regs []uint64) uint64 {
			return bitsf32(float32(int64(a(regs))))
		}), nil
	case isa.S2R:
		sr := isa.SReg(in.Aux)
		dst := in.Dst
		return func(e *engine, w *fwarp, active uint32) uint32 {
			exec := g(w, active)
			e.count(exec)
			if dst == isa.RZ {
				return exec
			}
			rf, nr := w.rf, w.nregs
			di := int(dst)
			for m := exec; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				rf[lane*nr+di] = e.specialReg(w, lane, sr)
			}
			return exec
		}, nil
	case isa.LDC:
		a := regSrc(in.Src[0])
		off := sx32(in.Imm)
		size := in.AccSize()
		dst := in.Dst
		return func(e *engine, w *fwarp, active uint32) uint32 {
			exec := g(w, active)
			e.count(exec)
			if exec != 0 {
				// LDC counts as a memory instruction (it is IsMemory) but,
				// like the cycle simulator, does not reset the no-progress
				// watchdog.
				e.memInstrs[isa.LDC]++
			}
			cw := pageWin{as: e.cbank}
			rf, nr := w.rf, w.nregs
			for m := exec; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				regs := rf[lane*nr : lane*nr+nr]
				v := cw.load(a(regs)+off, size)
				if dst != isa.RZ {
					regs[dst] = v
				}
			}
			return exec
		}, nil
	case isa.LDG, isa.STG, isa.LDS, isa.STS, isa.LDL, isa.STL, isa.ATOMG, isa.ATOMS:
		return cc.memClosure(in, pc, g), nil
	case isa.MALLOC, isa.FREE:
		return cc.heapClosure(in, pc, g), nil
	case isa.TRAP:
		imm := in.Imm
		return func(e *engine, w *fwarp, active uint32) uint32 {
			exec := g(w, active)
			e.count(exec)
			if exec != 0 {
				// One record per warp instruction suffices, attributed to
				// the lowest executing lane.
				e.trap(pc, w, bits.TrailingZeros32(exec), imm)
			}
			return exec
		}, nil
	default:
		return nil, fmt.Errorf("fastsim: %s: unhandled opcode %s at pc %d", cc.prog.Name, in.Op, pc)
	}
}

// intClosure wraps an integer-ALU lane computation with the shared
// integer body: 32-bit narrowing unless the W64 flag is set, then the
// mechanism's pointer check when the Activation hint is set (the S hint
// selects the pointer operand) — all decided at compile time. The lane
// sweep iterates the exec mask bit by bit so inactive lanes cost
// nothing; the A-hinted form is compiled separately so the common
// unhinted case carries no pointer-check state.
func (cc *compiler) intClosure(in *isa.Instr, g guardFn, val laneVal) opFn {
	w64 := in.W64()
	dst := in.Dst
	writes := in.WritesDst() && dst != isa.RZ
	if !in.Hint.A {
		return func(e *engine, w *fwarp, active uint32) uint32 {
			exec := g(w, active)
			e.count(exec)
			rf, nr := w.rf, w.nregs
			for m := exec; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				regs := rf[lane*nr : lane*nr+nr]
				out := val(w, regs, lane)
				if !w64 {
					out = sx32(int32(out))
				}
				if writes {
					regs[dst] = out
				}
			}
			return exec
		}
	}
	ptrReg := in.Src[in.Hint.PointerOperand()]
	return func(e *engine, w *fwarp, active uint32) uint32 {
		exec := g(w, active)
		e.count(exec)
		// Every executing lane runs exactly one pointer check
		// (CheckPointerOp cannot fault), so the counter hoists out of
		// the lane loop.
		e.stats.PointerChecks += uint64(bits.OnesCount32(exec))
		extraMax := uint64(0)
		rf, nr := w.rf, w.nregs
		for m := exec; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			regs := rf[lane*nr : lane*nr+nr]
			out := val(w, regs, lane)
			if !w64 {
				out = sx32(int32(out))
			}
			ptr := uint64(0)
			if ptrReg != isa.RZ {
				ptr = regs[ptrReg]
			}
			res, extra := e.mech.CheckPointerOp(ptr, out)
			out = res
			if extra > extraMax {
				extraMax = extra
			}
			if writes {
				regs[dst] = out
			}
		}
		w.vtime += extraMax
		return exec
	}
}

// fpClosure wraps a floating-point lane computation (no hints, no
// narrowing — FP results are 32-bit payloads in the register low word).
func (cc *compiler) fpClosure(in *isa.Instr, g guardFn, val func(regs []uint64) uint64) opFn {
	dst := in.Dst
	writes := in.WritesDst() && dst != isa.RZ
	return func(e *engine, w *fwarp, active uint32) uint32 {
		exec := g(w, active)
		e.count(exec)
		if !writes {
			return exec
		}
		rf, nr := w.rf, w.nregs
		for m := exec; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			regs := rf[lane*nr : lane*nr+nr]
			regs[dst] = val(regs)
		}
		return exec
	}
}

func cmpSigned(op isa.CmpOp, a, b int64) bool {
	switch op {
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	case isa.CmpGE:
		return a >= b
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	default:
		return false
	}
}

func cmpF32(op isa.CmpOp, a, b float32) bool {
	switch op {
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	case isa.CmpGE:
		return a >= b
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	default:
		return false
	}
}
