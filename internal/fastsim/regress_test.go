package fastsim_test

import (
	"strings"
	"testing"

	"lmi/internal/compiler"
	"lmi/internal/fastsim"
	"lmi/internal/isa"
	"lmi/internal/sim"
	"lmi/internal/workloads"
)

// prog wraps a hand-built instruction sequence with the launch metadata
// launchBoth's three-parameter convention expects.
func prog(name string, numRegs int, instrs []isa.Instr) *isa.Program {
	return &isa.Program{
		Name:          name,
		Instrs:        instrs,
		NumRegs:       numRegs,
		NumParams:     3,
		ParamBase:     compiler.ParamConstBase,
		StackPtrConst: compiler.StackPtrConstOffset,
	}
}

// TestPredicatedEXITRetiresOnlyGuardLanes is the minimized regression
// for the cycle-simulator divergence the differential bring-up flushed
// out: EXIT retired every active lane regardless of its guard
// predicate, so a @P EXIT killed the lanes where P was false too. Both
// tiers must leave the non-guard lanes running.
func TestPredicatedEXITRetiresOnlyGuardLanes(t *testing.T) {
	rz := [3]isa.Reg{isa.RZ, isa.RZ, isa.RZ}
	p := prog("pred_exit", 2, []isa.Instr{
		// R0 = tid
		{Op: isa.S2R, Dst: 0, Src: rz, Aux: uint8(isa.SRTidX), Pred: isa.PT},
		// P0 = tid < 16
		{Op: isa.SETP, Dst: 0, Src: [3]isa.Reg{0, isa.RZ, isa.RZ},
			HasImm: true, Imm: 16, Aux: uint8(isa.CmpLT), Pred: isa.PT},
		// Lanes 0..15 retire; lanes 16..31 must keep running.
		{Op: isa.EXIT, Dst: isa.RZ, Src: rz, Pred: 0},
		{Op: isa.IADD, Dst: 1, Src: rz, HasImm: true, Imm: 7, Pred: isa.PT},
		{Op: isa.EXIT, Dst: isa.RZ, Src: rz, Pred: isa.PT},
	})
	cycle, fast := launchBoth(t, p, workloads.VariantBase, sim.ScaledConfig(1), 1, 32, 32)
	diffFunctional(t, "pred_exit", cycle, fast)
	for _, tier := range []struct {
		name string
		st   *sim.KernelStats
	}{{"cycle", cycle}, {"compiled", fast}} {
		// 32+32 lanes for the prologue, 16 for the predicated EXIT, and
		// 16+16 for the tail only the surviving half executes.
		if tier.st.Instrs != 5 || tier.st.ThreadInstrs != 112 {
			t.Errorf("%s tier: Instrs=%d ThreadInstrs=%d, want 5 and 112 (predicated EXIT retired non-guard lanes?)",
				tier.name, tier.st.Instrs, tier.st.ThreadInstrs)
		}
		if tier.st.Halted || len(tier.st.Faults) != 0 {
			t.Errorf("%s tier: unexpected halt/faults: %v", tier.name, tier.st.Faults)
		}
	}
}

// TestPredicatedOffMemoryCountsNothing pins the S2 audit of the LSU
// extent-check accounting: a memory instruction whose warp guard
// predicate is false in every lane must bump neither ECChecked nor
// ECElided (the counters are per-lane, inside the exec mask), and must
// not count as an executed memory instruction — in either tier.
func TestPredicatedOffMemoryCountsNothing(t *testing.T) {
	rz := [3]isa.Reg{isa.RZ, isa.RZ, isa.RZ}
	instrs := []isa.Instr{
		// P0 = (0 < -1) = false in every lane.
		{Op: isa.SETP, Dst: 0, Src: rz, HasImm: true, Imm: -1,
			Aux: uint8(isa.CmpLT), Pred: isa.PT},
		// All three accesses are fully predicated off.
		{Op: isa.LDG, Dst: 1, Src: rz, Aux: 2, Pred: 0},
		{Op: isa.STG, Dst: isa.RZ, Src: [3]isa.Reg{isa.RZ, 1, isa.RZ}, Aux: 2, Pred: 0},
		{Op: isa.LDG, Dst: 1, Src: rz, Aux: 2, Pred: 0, Hint: isa.Hint{E: true}},
		{Op: isa.EXIT, Dst: isa.RZ, Src: rz, Pred: isa.PT},
	}
	for _, v := range []workloads.Variant{workloads.VariantBase, workloads.VariantLMI} {
		p := prog("pred_off_mem", 2, instrs)
		cycle, fast := launchBoth(t, p, v, sim.ScaledConfig(1), 1, 32, 32)
		diffFunctional(t, "pred_off_mem/"+v.String(), cycle, fast)
		for _, tier := range []struct {
			name string
			st   *sim.KernelStats
		}{{"cycle", cycle}, {"compiled", fast}} {
			if tier.st.ECChecked != 0 || tier.st.ECElided != 0 {
				t.Errorf("%s/%s tier: predicated-off accesses counted: ECChecked=%d ECElided=%d, want 0/0",
					v, tier.name, tier.st.ECChecked, tier.st.ECElided)
			}
			if n := tier.st.MemInstrs[isa.LDG] + tier.st.MemInstrs[isa.STG]; n != 0 {
				t.Errorf("%s/%s tier: predicated-off memory instructions counted as executed: %d", v, tier.name, n)
			}
			if tier.st.Instrs != 5 || tier.st.ThreadInstrs != 64 {
				t.Errorf("%s/%s tier: Instrs=%d ThreadInstrs=%d, want 5 and 64",
					v, tier.name, tier.st.Instrs, tier.st.ThreadInstrs)
			}
			if tier.st.Halted || len(tier.st.Faults) != 0 {
				t.Errorf("%s/%s tier: unexpected halt/faults: %v", v, tier.name, tier.st.Faults)
			}
		}
	}
}

// hintProgram is the S4 exerciser: one instruction per hint bit — an
// A-hinted (and optionally S-hinted) pointer add, an E-elided load, and
// an ordinary checked store — so every hint position is observable in
// the launch counters.
func hintProgram(sInSrc1 bool) *isa.Program {
	rz := [3]isa.Reg{isa.RZ, isa.RZ, isa.RZ}
	add := isa.Instr{Op: isa.IADD, Dst: 3, Src: [3]isa.Reg{2, 1, isa.RZ},
		Aux: isa.AuxW64, Pred: isa.PT, Hint: isa.Hint{A: true}}
	if sInSrc1 {
		// Pointer operand in Src[1]: the S bit must select it.
		add.Src = [3]isa.Reg{1, 2, isa.RZ}
		add.Hint.S = true
	}
	return prog("hints", 5, []isa.Instr{
		// R2 = in (tagged under LMI), R1 = tid*4, R3 = in + tid*4.
		{Op: isa.LDC, Dst: 2, Src: rz, Imm: int32(compiler.ParamConstBase), Aux: 3, Pred: isa.PT},
		{Op: isa.S2R, Dst: 0, Src: rz, Aux: uint8(isa.SRTidX), Pred: isa.PT},
		{Op: isa.SHL, Dst: 1, Src: [3]isa.Reg{0, isa.RZ, isa.RZ},
			HasImm: true, Imm: 2, Aux: isa.AuxW64, Pred: isa.PT},
		add,
		{Op: isa.LDG, Dst: 4, Src: [3]isa.Reg{3, isa.RZ, isa.RZ}, Aux: 2,
			Pred: isa.PT, Hint: isa.Hint{E: true}},
		{Op: isa.STG, Dst: isa.RZ, Src: [3]isa.Reg{3, 4, isa.RZ}, Aux: 2, Pred: isa.PT},
		{Op: isa.EXIT, Dst: isa.RZ, Src: rz, Pred: isa.PT},
	})
}

// TestHintBitRoundTrip drives the E/A/S hint bits through the compiled
// tier's decode boundary: the microcode words carry the bits at their
// architected positions (29/28/27), CompileWords consumes exactly those
// words, and the launch counters prove each hint survived — the A hint
// as OCU pointer checks, the E hint as elided extent checks, and the S
// bit as a passing in-bounds check with the pointer in Src[1].
func TestHintBitRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name    string
		sInSrc1 bool
	}{{"pointer_in_src0", false}, {"pointer_in_src1", true}} {
		t.Run(tc.name, func(t *testing.T) {
			p := hintProgram(tc.sInSrc1)
			words, err := isa.EncodeProgram(p)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			// The hint bits must sit at their architected word positions.
			if words[3].Lo>>isa.HintBitA&1 != 1 {
				t.Fatalf("A hint not at bit %d of word 3: %#x", isa.HintBitA, words[3].Lo)
			}
			if got := words[3].Lo >> isa.HintBitS & 1; (got == 1) != tc.sInSrc1 {
				t.Fatalf("S hint bit %d of word 3 = %d, want %v", isa.HintBitS, got, tc.sInSrc1)
			}
			if words[4].Lo>>isa.HintBitE&1 != 1 {
				t.Fatalf("E hint not at bit %d of word 4: %#x", isa.HintBitE, words[4].Lo)
			}
			if _, err := fastsim.CompileWords(p, words); err != nil {
				t.Fatalf("CompileWords: %v", err)
			}
			cycle, fast := launchBoth(t, p, workloads.VariantLMI, sim.ScaledConfig(1), 1, 32, 32)
			diffFunctional(t, "hints/"+tc.name, cycle, fast)
			for _, tier := range []struct {
				name string
				st   *sim.KernelStats
			}{{"cycle", cycle}, {"compiled", fast}} {
				if tier.st.PointerChecks != 32 {
					t.Errorf("%s tier: PointerChecks=%d, want 32 (A/S hint lost in decode?)",
						tier.name, tier.st.PointerChecks)
				}
				if tier.st.ECElided != 32 || tier.st.ECChecked != 32 {
					t.Errorf("%s tier: ECElided=%d ECChecked=%d, want 32/32 (E hint lost in decode?)",
						tier.name, tier.st.ECElided, tier.st.ECChecked)
				}
				if tier.st.Halted || len(tier.st.Faults) != 0 {
					t.Errorf("%s tier: unexpected halt/faults: %v", tier.name, tier.st.Faults)
				}
			}
		})
	}
}

// TestCompileWordsRejectsMalformed pins the decode boundary's error
// contract: reserved microcode bits outside the E/A/S hint positions
// and invalid opcodes are rejected with positioned "isa: word %d"
// errors, never silently reinterpreted.
func TestCompileWordsRejectsMalformed(t *testing.T) {
	p := hintProgram(false)
	encode := func() []isa.Word {
		words, err := isa.EncodeProgram(p)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		return words
	}

	words := encode()
	words[2].Lo |= 1 << 21 // reserved bit adjacent to the hint field
	_, err := fastsim.CompileWords(p, words)
	if err == nil || !strings.Contains(err.Error(), "word 2") ||
		!strings.Contains(err.Error(), "reserved microcode bits") {
		t.Errorf("reserved-bit word: got %v, want positioned reserved-bits error", err)
	}

	words = encode()
	words[1].Lo = words[1].Lo&^0xff | 0xfe // invalid opcode
	_, err = fastsim.CompileWords(p, words)
	if err == nil || !strings.Contains(err.Error(), "word 1") {
		t.Errorf("invalid-opcode word: got %v, want positioned decode error", err)
	}
}

// TestTierParse pins the -tier flag vocabulary shared by the CLIs.
func TestTierParse(t *testing.T) {
	for _, name := range fastsim.TierNames() {
		tier, err := fastsim.ParseTier(name)
		if err != nil {
			t.Errorf("ParseTier(%q): %v", name, err)
		}
		if tier.String() != name {
			t.Errorf("ParseTier(%q).String() = %q", name, tier.String())
		}
	}
	if _, err := fastsim.ParseTier("warp-speed"); err == nil ||
		!strings.Contains(err.Error(), "warp-speed") {
		t.Errorf("ParseTier(warp-speed): got %v, want named error", err)
	}
}
