package race

// The abstract domain of the race analyzer. Each register holds an
// affine form of the thread coordinates and a set of launch- or
// phase-constant symbols,
//
//	value = cx*tid.x + cy*tid.y + sum(coef_i * sym_i) + c0
//
// where the residual c0 ranges over an interval and optionally carries a
// congruence c0 = r (mod m). The symbols are what make the domain
// relational ACROSS threads: two threads of the same block agree on
// every symbol (CTAID, kernel parameters, once-per-barrier-phase merge
// values), so symbols cancel when the analyzer subtracts two threads'
// addresses. The congruence is what proves grid-stride seeding loops
// race-free: idx = tid + k*NTID keeps c0 = 0 (mod NTID), so two
// distinct threads' indices can never collide even though the residual
// interval is unbounded.
//
// A value additionally tracks uniformity (uni): whether all threads of
// a block that reach the defining instruction together compute the same
// value. Uniformity drives the barrier-divergence analysis; it is NOT
// used to cancel residuals across threads (two threads in the same
// barrier phase may sit at different iterations of a barrier-free loop
// and observe different values of a "uniform" loop variable — only
// symbols, whose definition points execute at most once per phase, are
// safe to share).

import (
	"math"

	"lmi/internal/bounds"
)

const (
	negInf = math.MinInt64
	posInf = math.MaxInt64
)

// rkind is the shape of an abstract value.
type rkind uint8

const (
	rkBot rkind = iota // unreached
	rkVal              // affine form below
	rkTop              // unknown value
	rkExt              // extent material: the SHL #59 tag-injection result
)

// Constraint-variable ids: the FM solver and the lincon constraints
// index variables as 0 = tid.x, 1 = tid.y, 2 = CTAID.X, 3 = CTAID.Y,
// 4+i = kernel parameter i, then merge-point symbols. rval term lists
// only ever hold ids >= varCtaidX (the tid coordinates live in cx/cy).
const (
	varTidX   int32 = 0
	varTidY   int32 = 1
	varCtaidX int32 = 2
	varCtaidY int32 = 3
	varParam0 int32 = 4
)

// term is one symbol occurrence: coef * var.
type term struct {
	v    int32
	coef int64
}

// rval is one abstract register value.
type rval struct {
	k   rkind
	uni bool
	cx  int64
	cy  int64
	// terms is sorted by v with nonzero coefficients, ids >= varCtaidX.
	terms []term
	// iv bounds the residual c0; m/r carry its congruence: m == 0 means
	// c0 == r exactly (iv is then the singleton [r, r]), m == 1 means no
	// congruence information, m >= 2 means c0 = r (mod m) with 0 <= r < m.
	iv   bounds.Interval
	m, r int64
}

func ivTop() bounds.Interval           { return bounds.Interval{Lo: negInf, Hi: posInf} }
func ivSingle(c int64) bounds.Interval { return bounds.Interval{Lo: c, Hi: c} }

func mkConst(c int64) rval {
	return rval{k: rkVal, uni: true, iv: ivSingle(c), m: 0, r: c}
}

func mkTop(uni bool) rval { return rval{k: rkTop, uni: uni, iv: ivTop(), m: 1} }

// mkResid is a residual-only value: no affine structure, c0 in iv.
func mkResid(iv bounds.Interval, uni bool) rval {
	if iv.IsConst() {
		v := mkConst(iv.Lo)
		v.uni = uni
		return v
	}
	return rval{k: rkVal, uni: uni, iv: iv, m: 1}
}

// mkSym is the pure symbol value sym(v), exactly.
func mkSym(v int32) rval {
	return rval{k: rkVal, uni: true, terms: []term{{v: v, coef: 1}}, iv: ivSingle(0), m: 0}
}

func (a rval) isConst() (int64, bool) {
	if a.k == rkVal && a.cx == 0 && a.cy == 0 && len(a.terms) == 0 && a.iv.IsConst() {
		return a.iv.Lo, true
	}
	return 0, false
}

// hasAffine reports whether the value depends on tids or symbols.
func (a rval) hasAffine() bool { return a.cx != 0 || a.cy != 0 || len(a.terms) > 0 }

func (a rval) mentionsSym(v int32) bool {
	for _, t := range a.terms {
		if t.v == v {
			return true
		}
	}
	return false
}

// ckAdd / ckMul are overflow-checked int64 arithmetic.
func ckAdd(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func ckMul(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a || (a == -1 && b == math.MinInt64) || (b == -1 && a == math.MinInt64) {
		return 0, false
	}
	return p, true
}

func absCk(a int64) (int64, bool) {
	if a == math.MinInt64 {
		return 0, false
	}
	if a < 0 {
		return -a, true
	}
	return a, true
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// mod is the least non-negative residue.
func mod(a, m int64) int64 {
	if m <= 0 {
		return a
	}
	a %= m
	if a < 0 {
		a += m
	}
	return a
}

// congruence helpers. All return a normalized (m, r) pair.

func congNone() (int64, int64) { return 1, 0 }

// congAdd is the congruence of a sum of two independent residuals.
func congAdd(m1, r1, m2, r2 int64) (int64, int64) {
	if m1 == 0 && m2 == 0 {
		if s, ok := ckAdd(r1, r2); ok {
			return 0, s
		}
		return congNone()
	}
	var g int64
	switch {
	case m1 == 0:
		g = m2
	case m2 == 0:
		g = m1
	default:
		g = gcd64(m1, m2)
	}
	if g <= 1 {
		return congNone()
	}
	return g, mod(mod(r1, g)+mod(r2, g), g)
}

// congScale is the congruence of c0 * s.
func congScale(m, r, s int64) (int64, int64) {
	if s == 0 {
		return 0, 0
	}
	if m == 0 {
		if p, ok := ckMul(r, s); ok {
			return 0, p
		}
		return congNone()
	}
	if m == 1 {
		return congNone()
	}
	as, ok := absCk(s)
	if !ok {
		return congNone()
	}
	mm, ok := ckMul(m, as)
	if !ok {
		return congNone()
	}
	rs, ok := ckMul(r, s)
	if !ok {
		return congNone()
	}
	return mm, mod(rs, mm)
}

// congJoin is the congruence holding for a value drawn from either side.
func congJoin(m1, r1, m2, r2 int64) (int64, int64) {
	if m1 == 0 && m2 == 0 && r1 == r2 {
		return 0, r1
	}
	if m1 == 1 || m2 == 1 {
		return congNone()
	}
	d, ok := ckAdd(r1, -r2)
	if !ok {
		return congNone()
	}
	ad, ok := absCk(d)
	if !ok {
		return congNone()
	}
	var g int64
	switch {
	case m1 == 0 && m2 == 0:
		g = ad
	case m1 == 0:
		g = gcd64(m2, ad)
	case m2 == 0:
		g = gcd64(m1, ad)
	default:
		g = gcd64(gcd64(m1, m2), ad)
	}
	if g == 0 {
		return 0, r1
	}
	if g == 1 {
		return congNone()
	}
	return g, mod(r1, g)
}

// mergeTerms combines two sorted term lists with ta + sign*tb.
func mergeTerms(ta, tb []term, sign int64) ([]term, bool) {
	out := make([]term, 0, len(ta)+len(tb))
	i, j := 0, 0
	for i < len(ta) || j < len(tb) {
		switch {
		case j >= len(tb) || (i < len(ta) && ta[i].v < tb[j].v):
			out = append(out, ta[i])
			i++
		case i >= len(ta) || tb[j].v < ta[i].v:
			c, ok := ckMul(tb[j].coef, sign)
			if !ok {
				return nil, false
			}
			out = append(out, term{v: tb[j].v, coef: c})
			j++
		default:
			sb, ok := ckMul(tb[j].coef, sign)
			if !ok {
				return nil, false
			}
			c, ok := ckAdd(ta[i].coef, sb)
			if !ok {
				return nil, false
			}
			if c != 0 {
				out = append(out, term{v: ta[i].v, coef: c})
			}
			i++
			j++
		}
	}
	if len(out) == 0 {
		return nil, true
	}
	return out, true
}

func termsEqual(ta, tb []term) bool {
	if len(ta) != len(tb) {
		return false
	}
	for i := range ta {
		if ta[i] != tb[i] {
			return false
		}
	}
	return true
}

// addRV is the abstract sum. Uniformity survives exactly when both
// inputs are uniform.
func addRV(a, b rval) rval {
	uni := a.uni && b.uni
	if a.k != rkVal || b.k != rkVal {
		return mkTop(uni)
	}
	cx, ok1 := ckAdd(a.cx, b.cx)
	cy, ok2 := ckAdd(a.cy, b.cy)
	ts, ok3 := mergeTerms(a.terms, b.terms, 1)
	if !ok1 || !ok2 || !ok3 {
		return mkTop(uni)
	}
	m, r := congAdd(a.m, a.r, b.m, b.r)
	return rval{k: rkVal, uni: uni, cx: cx, cy: cy, terms: ts, iv: a.iv.Add(b.iv), m: m, r: r}
}

// scaleRV is the abstract product by a constant.
func scaleRV(a rval, s int64) rval {
	if s == 0 {
		return mkConst(0)
	}
	if a.k != rkVal {
		return mkTop(a.uni)
	}
	cx, ok1 := ckMul(a.cx, s)
	cy, ok2 := ckMul(a.cy, s)
	if !ok1 || !ok2 {
		return mkTop(a.uni)
	}
	ts := make([]term, len(a.terms))
	for i, t := range a.terms {
		c, ok := ckMul(t.coef, s)
		if !ok {
			return mkTop(a.uni)
		}
		ts[i] = term{v: t.v, coef: c}
	}
	if len(ts) == 0 {
		ts = nil
	}
	m, r := congScale(a.m, a.r, s)
	return rval{k: rkVal, uni: a.uni, cx: cx, cy: cy, terms: ts,
		iv: a.iv.Mul(ivSingle(s)), m: m, r: r}
}

func subRV(a, b rval) rval { return addRV(a, scaleRV(b, -1)) }

func eqRV(a, b rval) bool {
	if a.k != b.k || a.uni != b.uni || a.cx != b.cx || a.cy != b.cy ||
		a.iv != b.iv || a.m != b.m || a.r != b.r {
		return false
	}
	return termsEqual(a.terms, b.terms)
}

// joinRV is the lattice join. divergent marks a merge point reached
// under an unreconverged thread-dependent branch: differing values then
// differ per thread, so uniformity is lost even if both inputs were
// uniform.
func joinRV(a, b rval, divergent bool) rval {
	if a.k == rkBot {
		return b
	}
	if b.k == rkBot {
		return a
	}
	if eqRV(a, b) {
		return a
	}
	uni := a.uni && b.uni && !divergent
	if a.k != rkVal || b.k != rkVal {
		if a.k == rkExt && b.k == rkExt {
			return rval{k: rkExt, uni: uni, iv: ivTop(), m: 1}
		}
		return mkTop(uni)
	}
	if a.cx != b.cx || a.cy != b.cy || !termsEqual(a.terms, b.terms) {
		return mkTop(uni)
	}
	m, r := congJoin(a.m, a.r, b.m, b.r)
	out := rval{k: rkVal, uni: uni, cx: a.cx, cy: a.cy, terms: a.terms,
		iv: a.iv.Join(b.iv), m: m, r: r}
	if m != 0 && out.iv.IsConst() {
		// Keep the exactness invariant: a singleton interval is an exact
		// residual.
		out.m, out.r = 0, out.iv.Lo
	}
	return out
}

// widenRV accelerates a joined entry value against the previous entry:
// any interval side that moved goes to infinity (the congruence lattice
// is finite-height and needs no widening). An exact residual that loses
// exactness re-derives its congruence from the old modulus.
func widenRV(old, j rval) rval {
	if eqRV(old, j) || old.k != j.k || j.k != rkVal {
		return j
	}
	if old.cx != j.cx || old.cy != j.cy || !termsEqual(old.terms, j.terms) {
		return j
	}
	if j.iv.Lo < old.iv.Lo {
		j.iv.Lo = negInf
	}
	if j.iv.Hi > old.iv.Hi {
		j.iv.Hi = posInf
	}
	if j.m == 0 && !j.iv.IsConst() {
		j.m, j.r = congNone()
	}
	return j
}
