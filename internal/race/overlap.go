package race

// The overlap decision: given two same-phase shared accesses A and B,
// can two DISTINCT threads (t1 executing A, t2 executing B) touch
// overlapping bytes? "Distinct" is case-split into four delta regions
// over (dx, dy) = (t1.x - t2.x, t1.y - t2.y), and each region must be
// refuted by one of two independent engines:
//
//  1. Matched-structure enumeration: when A and B have identical
//     thread/symbol coefficients, the shared symbols cancel exactly and
//     the address difference is D = cx*dx + cy*dy + dc with dc bounded
//     by the residual intervals and a congruence. Enumerating the
//     (bounded) delta region decides overlap exactly under those
//     constraints — including the congruence reasoning interval
//     methods cannot express (grid-stride seeding loops) and the
//     lattice-point reasoning rational methods cannot express (matmul
//     row/column strides where D = 4dx + 32dy has rational but no
//     integral zeros in range).
//
//  2. Fourier-Motzkin elimination: the fully relational fallback. The
//     renamed path constraints of both threads (guards like tid <
//     stride), the variable boxes, the delta-region bounds, and the
//     overlap window on D form a linear system; rational infeasibility
//     (which FM decides) implies integer infeasibility, so an
//     infeasible system proves the region clean. Symbols are shared
//     between the two threads — sound precisely because the pair
//     executes in one barrier phase and phase constants are equal
//     across the block.
//
// Either engine refuting every region proves the pair race-free; if
// both are inconclusive for some region, the pair is reported.

import "lmi/internal/bounds"

// dreg is one delta region: bounds on (t1 - t2) thread coordinates.
type dreg struct {
	dxLo, dxHi int64
	dyLo, dyHi int64
}

func deltaRegions(bx, by int64) []dreg {
	var out []dreg
	if bx > 1 {
		out = append(out,
			dreg{1, bx - 1, -(by - 1), by - 1},
			dreg{-(bx - 1), -1, -(by - 1), by - 1})
	}
	if by > 1 {
		out = append(out,
			dreg{0, 0, 1, by - 1},
			dreg{0, 0, -(by - 1), -1})
	}
	return out
}

// overlapPossible reports whether some pair of distinct threads can
// overlap in accesses a and b. It only ever errs toward true.
func (ax *analysis) overlapPossible(a, b *access) bool {
	regions := deltaRegions(ax.bx, ax.by)
	if len(regions) == 0 {
		return false // single-thread blocks cannot race
	}
	matched := a.rv.k == rkVal && b.rv.k == rkVal &&
		a.rv.cx == b.rv.cx && a.rv.cy == b.rv.cy &&
		termsEqual(a.rv.terms, b.rv.terms)
	for _, rg := range regions {
		if matched && ax.enumClean(a, b, rg) {
			continue
		}
		if ax.fmClean(a, b, rg) {
			continue
		}
		return true
	}
	return false
}

// enumCap bounds the delta-region enumeration (1024x64 and 32x32
// blocks fit; anything larger falls through to FM).
const enumCap = 1 << 16

// enumClean decides a matched-structure pair over one delta region by
// exhaustive enumeration of (dx, dy): for each delta the residual
// difference dc must land in the overlap window AND in the residual
// interval difference AND on the residual congruence. No admissible dc
// anywhere means the region is clean.
func (ax *analysis) enumClean(a, b *access, rg dreg) bool {
	nx, ny := rg.dxHi-rg.dxLo+1, rg.dyHi-rg.dyLo+1
	if nx <= 0 || ny <= 0 {
		return true
	}
	if nx*ny > enumCap {
		return false
	}
	ivd := a.rv.iv.Sub(b.rv.iv)
	bm, br := congScale(b.rv.m, b.rv.r, -1)
	g, rd := congAdd(a.rv.m, a.rv.r, bm, br)
	for dx := rg.dxLo; dx <= rg.dxHi; dx++ {
		for dy := rg.dyLo; dy <= rg.dyHi; dy++ {
			ax1, ok1 := ckMul(a.rv.cx, dx)
			ax2, ok2 := ckMul(a.rv.cy, dy)
			if !ok1 || !ok2 {
				return false
			}
			aff, ok3 := ckAdd(ax1, ax2)
			if !ok3 {
				return false
			}
			// Overlap window: D = aff + dc in [1-sizeB, sizeA-1].
			win := bounds.Interval{Lo: 1 - b.size, Hi: a.size - 1}.AddConst(-aff)
			lo, hi := win.Lo, win.Hi
			if ivd.Lo > lo {
				lo = ivd.Lo
			}
			if ivd.Hi < hi {
				hi = ivd.Hi
			}
			if lo > hi {
				continue
			}
			if congWitness(g, rd, lo, hi) {
				return false // this delta admits an overlap
			}
		}
	}
	return true
}

// congWitness reports whether [lo, hi] contains an integer congruent
// to rd modulo g (g == 0: exactly rd; g == 1: any integer).
func congWitness(g, rd, lo, hi int64) bool {
	if lo > hi {
		return false
	}
	if g == 0 {
		return rd >= lo && rd <= hi
	}
	if g == 1 {
		return true
	}
	if lo <= negInf+1 || hi >= posInf-1 {
		return true // saturated bounds: assume a witness
	}
	rr := mod(rd, g)
	// Smallest value >= lo congruent to rr (mod g).
	k := rr + g*ceilDiv(lo-rr, g)
	return k <= hi
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

// --- Fourier-Motzkin ---

// FM-local variable indices; symbols are appended from fmLocalBase.
const (
	fmX1 int32 = iota
	fmY1
	fmX2
	fmY2
	fmC1
	fmC2
	fmLocalBase
)

// fmCap bounds the constraint-set blowup; exceeding it makes the check
// inconclusive (never unsound).
const fmCap = 512

type fmCon struct {
	ts []term // sorted by v, nonzero coefs; sum(coef*v) <= c
	c  int64
}

type fmBuilder struct {
	ax    *analysis
	cons  []fmCon
	local map[int32]int32
	next  int32
	bad   bool // checked-arithmetic overflow: give up, report inconclusive
}

func (fb *fmBuilder) sym(v int32) int32 {
	if id, ok := fb.local[v]; ok {
		return id
	}
	id := fb.next
	fb.next++
	fb.local[v] = id
	return id
}

// add normalizes and appends sum(coef*var) <= c.
func (fb *fmBuilder) add(ts []term, c int64) {
	nc, ok := normalizeCon(fmCon{ts: ts, c: c})
	if !ok {
		fb.bad = true
		return
	}
	if len(nc.ts) == 0 && nc.c >= 0 {
		return // trivially true
	}
	fb.cons = append(fb.cons, nc)
}

func (fb *fmBuilder) box(v int32, iv bounds.Interval) {
	if iv.Hi < posInf {
		fb.add([]term{{v: v, coef: 1}}, iv.Hi)
	}
	if iv.Lo > negInf {
		fb.add([]term{{v: v, coef: -1}}, -iv.Lo)
	}
}

// renameCon maps a path constraint (over tids/symbols) into FM-local
// variables for one of the two threads.
func (fb *fmBuilder) renameCon(c lincon, x, y int32) {
	ts := make([]term, 0, len(c.ts))
	for _, t := range c.ts {
		switch t.v {
		case varTidX:
			ts = append(ts, term{v: x, coef: t.coef})
		case varTidY:
			ts = append(ts, term{v: y, coef: t.coef})
		default:
			ts = append(ts, term{v: fb.sym(t.v), coef: t.coef})
		}
	}
	sortTerms(ts)
	fb.add(ts, c.c)
}

func sortTerms(ts []term) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].v < ts[j-1].v; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// normalizeCon divides by the gcd of the coefficients with floor
// division on the constant — the integer-strengthening step that makes
// FM slightly sharper than pure rational reasoning.
func normalizeCon(c fmCon) (fmCon, bool) {
	if len(c.ts) == 0 {
		return c, true
	}
	g := int64(0)
	for _, t := range c.ts {
		a, ok := absCk(t.coef)
		if !ok {
			return c, false
		}
		g = gcd64(g, a)
	}
	if g > 1 {
		ts := make([]term, len(c.ts))
		for i, t := range c.ts {
			ts[i] = term{v: t.v, coef: t.coef / g}
		}
		c = fmCon{ts: ts, c: floorDiv(c.c, g)}
	}
	return c, true
}

// fmClean proves one delta region infeasible (hence clean) by
// Fourier-Motzkin elimination over the combined linear system.
func (ax *analysis) fmClean(a, b *access, rg dreg) bool {
	if a.rv.k != rkVal || b.rv.k != rkVal {
		return false
	}
	fb := &fmBuilder{ax: ax, local: map[int32]int32{}, next: fmLocalBase}

	// D = addr1(A) - addr2(B) as FM terms; shared symbols combine.
	coef := map[int32]int64{}
	acc := func(v int32, c int64) {
		s, ok := ckAdd(coef[v], c)
		if !ok {
			fb.bad = true
			return
		}
		coef[v] = s
	}
	acc(fmX1, a.rv.cx)
	acc(fmY1, a.rv.cy)
	acc(fmC1, 1)
	for _, t := range a.rv.terms {
		acc(fb.sym(t.v), t.coef)
	}
	acc(fmX2, -b.rv.cx)
	acc(fmY2, -b.rv.cy)
	acc(fmC2, -1)
	for _, t := range b.rv.terms {
		c, ok := ckMul(t.coef, -1)
		if !ok {
			fb.bad = true
			break
		}
		acc(fb.sym(t.v), c)
	}
	if fb.bad {
		return false
	}
	var dts []term
	for v, c := range coef {
		if c != 0 {
			dts = append(dts, term{v: v, coef: c})
		}
	}
	sortTerms(dts)
	ndts := make([]term, len(dts))
	for i, t := range dts {
		c, ok := ckMul(t.coef, -1)
		if !ok {
			return false
		}
		ndts[i] = term{v: t.v, coef: c}
	}
	// Overlap window: D <= sizeA-1 and -D <= sizeB-1.
	fb.add(dts, a.size-1)
	fb.add(ndts, b.size-1)

	// Delta region: dxLo <= x1-x2 <= dxHi, same in y.
	fb.add([]term{{v: fmX1, coef: -1}, {v: fmX2, coef: 1}}, -rg.dxLo)
	fb.add([]term{{v: fmX1, coef: 1}, {v: fmX2, coef: -1}}, rg.dxHi)
	fb.add([]term{{v: fmY1, coef: -1}, {v: fmY2, coef: 1}}, -rg.dyLo)
	fb.add([]term{{v: fmY1, coef: 1}, {v: fmY2, coef: -1}}, rg.dyHi)

	// Path constraints of each thread.
	for _, c := range a.cons {
		fb.renameCon(c, fmX1, fmY1)
	}
	for _, c := range b.cons {
		fb.renameCon(c, fmX2, fmY2)
	}

	// Variable boxes (after renames so all symbols are registered).
	tb := bounds.Interval{Lo: 0, Hi: ax.bx - 1}
	ty := bounds.Interval{Lo: 0, Hi: ax.by - 1}
	fb.box(fmX1, tb)
	fb.box(fmX2, tb)
	fb.box(fmY1, ty)
	fb.box(fmY2, ty)
	fb.box(fmC1, a.rv.iv)
	fb.box(fmC2, b.rv.iv)
	for vid, id := range fb.local {
		fb.box(id, ax.varRange(vid))
	}
	if fb.bad {
		return false
	}
	return fmInfeasible(fb.cons, fb.next)
}

// fmInfeasible runs the elimination. True means the rational system
// has no solution (so the integer one has none either).
func fmInfeasible(cons []fmCon, nvars int32) bool {
	for {
		// Constant contradictions end the search; trivial and duplicate
		// constraints are dropped.
		kept := cons[:0]
		seen := map[string]bool{}
		for _, c := range cons {
			if len(c.ts) == 0 {
				if c.c < 0 {
					return true
				}
				continue
			}
			k := conKey(c)
			if seen[k] {
				continue
			}
			seen[k] = true
			kept = append(kept, c)
		}
		cons = kept

		// Pick the variable with the fewest upper*lower products.
		bestV, bestCost := int32(-1), int64(-1)
		for v := int32(0); v < nvars; v++ {
			up, lo, present := 0, 0, false
			for _, c := range cons {
				for _, t := range c.ts {
					if t.v == v {
						present = true
						if t.coef > 0 {
							up++
						} else {
							lo++
						}
					}
				}
			}
			if !present {
				continue
			}
			cost := int64(up) * int64(lo)
			if bestV < 0 || cost < bestCost {
				bestV, bestCost = v, cost
			}
		}
		if bestV < 0 {
			return false // no variables left, no contradiction found
		}

		var uppers, lowers, rest []fmCon
		for _, c := range cons {
			cv := int64(0)
			for _, t := range c.ts {
				if t.v == bestV {
					cv = t.coef
				}
			}
			switch {
			case cv > 0:
				uppers = append(uppers, c)
			case cv < 0:
				lowers = append(lowers, c)
			default:
				rest = append(rest, c)
			}
		}
		next := rest
		for _, u := range uppers {
			for _, l := range lowers {
				nc, ok := fmCombine(u, l, bestV)
				if !ok {
					return false
				}
				next = append(next, nc)
				if len(next) > fmCap {
					return false
				}
			}
		}
		cons = next
	}
}

func conKey(c fmCon) string {
	buf := make([]byte, 0, 8+len(c.ts)*12)
	app := func(x int64) {
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(x>>(8*i)))
		}
	}
	app(c.c)
	for _, t := range c.ts {
		app(int64(t.v))
		app(t.coef)
	}
	return string(buf)
}

// fmCombine eliminates v between an upper (coef > 0) and lower
// (coef < 0) constraint by cross-multiplication.
func fmCombine(u, l fmCon, v int32) (fmCon, bool) {
	var au, al int64
	for _, t := range u.ts {
		if t.v == v {
			au = t.coef
		}
	}
	for _, t := range l.ts {
		if t.v == v {
			al = -t.coef
		}
	}
	// al*U + au*L: the v terms cancel by construction.
	m := map[int32]int64{}
	addScaled := func(ts []term, s int64) bool {
		for _, t := range ts {
			if t.v == v {
				continue
			}
			p, ok := ckMul(t.coef, s)
			if !ok {
				return false
			}
			sum, ok := ckAdd(m[t.v], p)
			if !ok {
				return false
			}
			m[t.v] = sum
		}
		return true
	}
	if !addScaled(u.ts, al) || !addScaled(l.ts, au) {
		return fmCon{}, false
	}
	cu, ok1 := ckMul(u.c, al)
	cl, ok2 := ckMul(l.c, au)
	if !ok1 || !ok2 {
		return fmCon{}, false
	}
	c, ok := ckAdd(cu, cl)
	if !ok {
		return fmCon{}, false
	}
	var ts []term
	for vv, cc := range m {
		if cc != 0 {
			ts = append(ts, term{v: vv, coef: cc})
		}
	}
	sortTerms(ts)
	return normalizeCon(fmCon{ts: ts, c: c})
}
