// Package race statically proves shared-memory race freedom and
// barrier convergence of compiled kernels.
//
// The analyzer partitions a program into barrier phases (the intervals
// between BAR instructions), computes a symbolic summary of every
// shared-memory access (LDS/STS/ATOMS) as an affine function of the
// thread coordinates plus launch- and phase-constant symbols, and then
// decides, for every pair of accesses that can execute in the same
// phase with at least one write, whether two DISTINCT threads of one
// block can touch overlapping bytes. Atomic-atomic pairs commute and
// are never races; every other overlapping pair is reported with the
// same classification the dynamic race oracle (internal/sim's
// RaceOracle) uses, so a static diagnosis can be pinned against an
// oracle record instruction-for-instruction.
//
// Barrier divergence — a BAR that only a subset of the block's threads
// reaches, which deadlocks real hardware even though the reconvergence
// stack of the simulators happens to tolerate some shapes — is
// detected flow-sensitively: branches whose guard is not provably
// block-uniform taint all program points up to their reconvergence
// point, and any BAR inside a tainted region (or a BAR under a
// thread-dependent guard predicate) is diagnosed.
//
// The analysis is sound for the ISA subset the compiler emits: a
// program with zero diagnostics has no intra-block shared-memory race
// and no divergent barrier under ANY input permitted by the bounds
// contract. It is not complete — unknown addresses and inconclusive
// overlap decisions are reported as diagnostics rather than silently
// dropped.
package race

import (
	"fmt"
	"sort"

	"lmi/internal/bounds"
	"lmi/internal/compiler"
	"lmi/internal/core"
	"lmi/internal/isa"
	"lmi/internal/sim"
)

// DiagKind classifies an analyzer diagnostic.
type DiagKind uint8

// Diagnostic kinds.
const (
	// KindRace is a potential intra-block shared-memory race.
	KindRace DiagKind = iota
	// KindBarrierDivergence is a BAR reachable by only part of a block.
	KindBarrierDivergence
	// KindUnknownAddress is a shared access whose address the analyzer
	// cannot express; it must be treated as racing with everything.
	KindUnknownAddress
	// KindNoConverge means the fixpoint budget was exhausted; results
	// would be unsound, so the whole program is flagged.
	KindNoConverge
)

// String returns the kind name.
func (k DiagKind) String() string {
	switch k {
	case KindRace:
		return "race"
	case KindBarrierDivergence:
		return "barrier-divergence"
	case KindUnknownAddress:
		return "unknown-address"
	case KindNoConverge:
		return "no-converge"
	default:
		return fmt.Sprintf("DiagKind(%d)", uint8(k))
	}
}

// Diag is one analyzer finding.
type Diag struct {
	Kind DiagKind
	// Race is the oracle-compatible classification when Kind is
	// KindRace.
	Race sim.RaceKind
	// PC and OtherPC identify the conflicting instructions (PC <=
	// OtherPC for races; OtherPC is -1 for single-site findings).
	PC, OtherPC int
	// Loc and OtherLoc are the IR source locations of PC and OtherPC
	// when the caller supplied a source map.
	Loc, OtherLoc compiler.SourceLoc
	Msg           string
}

// String renders the diagnostic one-per-line style.
func (d Diag) String() string {
	return fmt.Sprintf("[%s] %s", d.Kind, d.Msg)
}

// Result is the outcome of one analysis.
type Result struct {
	Diags []Diag
	// SharedAccesses counts the LDS/STS/ATOMS sites summarized.
	SharedAccesses int
	// PairsTested counts the same-phase pairs submitted to the overlap
	// decision.
	PairsTested int
	// Phases counts the barrier-phase regions.
	Phases int
	// Converged reports whether the fixpoint finished within budget.
	Converged bool
}

// Clean reports whether the program was proved race- and
// divergence-free.
func (r *Result) Clean() bool { return len(r.Diags) == 0 }

// Analyze runs the race and barrier-divergence analysis over p under
// the launch geometry and parameter ranges of c. src, when non-nil, is
// the PC-indexed source map from CompileWithSourceMap and is used only
// to decorate diagnostics.
func Analyze(p *isa.Program, c bounds.Contract, src []compiler.SourceLoc) *Result {
	ax := newAnalysis(p, c, src)
	ax.run()
	return ax.report()
}

// divAll is the divergence-set sentinel for a divergent branch with no
// structural reconvergence point: the taint never clears.
const divAll int32 = -2

// pfact is the snapshot of one SETP: predicate register holds
// (xv op yv). The snapshot values stay valid forever (they are
// values, not registers); xok/yok additionally record that the operand
// REGISTERS still hold those values, which is what interval tightening
// of the registers on a refined edge requires.
type pfact struct {
	ok       bool
	uni      bool
	op       isa.CmpOp
	xr, yr   isa.Reg
	xok, yok bool
	xv, yv   rval
}

func pfactEq(a, b pfact) bool {
	return a.ok == b.ok && a.uni == b.uni && a.op == b.op &&
		a.xr == b.xr && a.yr == b.yr && a.xok == b.xok && a.yok == b.yok &&
		eqRV(a.xv, b.xv) && eqRV(a.yv, b.yv)
}

// lincon is one linear path constraint: sum(coef*var) <= c over
// constraint variables (varTidX, varTidY, symbols).
type lincon struct {
	ts []term
	c  int64
}

func linconEq(a, b lincon) bool { return a.c == b.c && termsEqual(a.ts, b.ts) }

// maxCons bounds the per-state constraint list; dropping constraints
// is always sound.
const maxCons = 24

// state is the abstract machine state at one program point.
type state struct {
	live  bool
	regs  []rval
	preds [isa.NumPredRegs + 1]pfact
	cons  []lincon
	// div is the sorted set of open reconvergence PCs: join points of
	// thread-dependent branches not yet reached on this path.
	div []int32
}

func cloneState(s *state) state {
	c := *s
	c.regs = append([]rval(nil), s.regs...)
	c.cons = append([]lincon(nil), s.cons...)
	c.div = append([]int32(nil), s.div...)
	return c
}

func stateEq(a, b *state) bool {
	if a.live != b.live || len(a.regs) != len(b.regs) ||
		len(a.cons) != len(b.cons) || len(a.div) != len(b.div) {
		return false
	}
	for i := range a.regs {
		if !eqRV(a.regs[i], b.regs[i]) {
			return false
		}
	}
	for i := range a.preds {
		if !pfactEq(a.preds[i], b.preds[i]) {
			return false
		}
	}
	for i := range a.cons {
		if !linconEq(a.cons[i], b.cons[i]) {
			return false
		}
	}
	for i := range a.div {
		if a.div[i] != b.div[i] {
			return false
		}
	}
	return true
}

func hasDiv(d []int32, pc int32) bool {
	for _, x := range d {
		if x == pc {
			return true
		}
	}
	return false
}

func addDiv(d []int32, pc int32) []int32 {
	if hasDiv(d, pc) {
		return d
	}
	out := append(append([]int32(nil), d...), pc)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func removeDiv(d []int32, pc int32) []int32 {
	if !hasDiv(d, pc) {
		return d
	}
	out := make([]int32, 0, len(d)-1)
	for _, x := range d {
		if x != pc {
			out = append(out, x)
		}
	}
	return out
}

func unionDiv(a, b []int32) []int32 {
	out := a
	for _, x := range b {
		out = addDiv(out, x)
	}
	return out
}

func intersectCons(a, b []lincon) []lincon {
	var out []lincon
	for _, ca := range a {
		for _, cb := range b {
			if linconEq(ca, cb) {
				out = append(out, ca)
				break
			}
		}
	}
	return out
}

func addCon(cons []lincon, nc lincon) []lincon {
	if len(nc.ts) == 0 || len(cons) >= maxCons {
		return cons
	}
	for _, c := range cons {
		if linconEq(c, nc) {
			return cons
		}
	}
	return append(cons, nc)
}

// varInfo is one constraint variable: its value range and, for
// merge-point symbols, the defining merge PC and register.
type varInfo struct {
	rng     bounds.Interval
	home    int
	homeReg isa.Reg
}

type mergeKey struct {
	pc  int
	reg isa.Reg
}

// access is one shared-memory access site summary.
type access struct {
	pc      int
	kind    sim.RaceAccessKind
	size    int64
	rv      rval
	cons    []lincon
	regions []int
}

type diagKey struct {
	kind    DiagKind
	race    sim.RaceKind
	pc, opc int
}

type analysis struct {
	p   *isa.Program
	src []compiler.SourceLoc
	c   bounds.Contract

	bx, by, gx, gy int64

	vars     []varInfo
	mergeSym map[mergeKey]int32
	homeSyms map[int][]int32
	symDirty bool

	entries []state
	inWork  []bool
	indeg   []int

	oncePhaseMemo map[int]bool

	converged bool
	diags     map[diagKey]Diag

	sharedAccesses int
	pairsTested    int
	phases         int
}

func newAnalysis(p *isa.Program, c bounds.Contract, src []compiler.SourceLoc) *analysis {
	ax := &analysis{
		p: p, src: src, c: c,
		bx: c.BlockDimX, by: c.BlockDimY, gx: c.GridDimX, gy: c.GridDimY,
		mergeSym:      map[mergeKey]int32{},
		homeSyms:      map[int][]int32{},
		oncePhaseMemo: map[int]bool{},
		converged:     true,
		diags:         map[diagKey]Diag{},
	}
	if ax.bx < 1 {
		ax.bx = 1
	}
	if ax.by < 1 {
		ax.by = 1
	}
	if ax.gx < 1 {
		ax.gx = 1
	}
	if ax.gy < 1 {
		ax.gy = 1
	}
	// Predefined variables: thread coordinates, block coordinates, then
	// one per kernel parameter (pointer parameters keep the slot for id
	// stability but are never referenced).
	ax.vars = []varInfo{
		{rng: bounds.Interval{Lo: 0, Hi: ax.bx - 1}, home: -1},
		{rng: bounds.Interval{Lo: 0, Hi: ax.by - 1}, home: -1},
		{rng: bounds.Interval{Lo: 0, Hi: ax.gx - 1}, home: -1},
		{rng: bounds.Interval{Lo: 0, Hi: ax.gy - 1}, home: -1},
	}
	for i := 0; i < p.NumParams; i++ {
		rng := bounds.Interval{Lo: -1 << 31, Hi: 1<<31 - 1}
		if i == c.CountParam {
			rng = bounds.Interval{Lo: c.CountMin, Hi: c.CountMax}
		}
		ax.vars = append(ax.vars, varInfo{rng: rng, home: -1})
	}
	return ax
}

func (ax *analysis) varRange(v int32) bounds.Interval {
	if int(v) < len(ax.vars) {
		return ax.vars[v].rng
	}
	return ivTop()
}

// affRange bounds the affine (tid + symbol) part of v.
func (ax *analysis) affRange(v rval) bounds.Interval {
	r := ivSingle(0)
	if v.cx != 0 {
		r = r.Add(ivSingle(v.cx).Mul(bounds.Interval{Lo: 0, Hi: ax.bx - 1}))
	}
	if v.cy != 0 {
		r = r.Add(ivSingle(v.cy).Mul(bounds.Interval{Lo: 0, Hi: ax.by - 1}))
	}
	for _, t := range v.terms {
		r = r.Add(ivSingle(t.coef).Mul(ax.varRange(t.v)))
	}
	return r
}

// fullRange bounds the whole value of v.
func (ax *analysis) fullRange(v rval) bounds.Interval {
	if v.k != rkVal {
		return ivTop()
	}
	return ax.affRange(v).Add(v.iv)
}

func (ax *analysis) newSym(pc int, reg isa.Reg, rng bounds.Interval) int32 {
	vid := int32(len(ax.vars))
	ax.vars = append(ax.vars, varInfo{rng: rng, home: pc, homeReg: reg})
	ax.mergeSym[mergeKey{pc, reg}] = vid
	ax.homeSyms[pc] = append(ax.homeSyms[pc], vid)
	return vid
}

// widenIvThresh widens a grown interval with a single threshold at 0:
// a descending lower bound pauses at 0 before falling to -inf, which
// preserves the non-negativity of tree-reduction strides and loop
// counters without a full narrowing pass.
func widenIvThresh(old, j bounds.Interval) bounds.Interval {
	if j.Lo < old.Lo {
		if j.Lo >= 0 {
			j.Lo = 0
		} else {
			j.Lo = negInf
		}
	}
	if j.Hi > old.Hi {
		j.Hi = posInf
	}
	return j
}

func (ax *analysis) growSym(vid int32, fr bounds.Interval, back bool) {
	cur := ax.vars[vid].rng
	j := cur.Join(fr)
	if j == cur {
		return
	}
	if back {
		j = widenIvThresh(cur, j)
	}
	if j != cur {
		ax.vars[vid].rng = j
		ax.symDirty = true
	}
}

// scrubSym removes every mention of a stale symbol from a state:
// register values referencing it go to top (uniformity is a runtime
// property of the register and survives), constraints and predicate
// snapshots referencing it are dropped.
func scrubSym(st *state, vid int32) {
	for i := range st.regs {
		if st.regs[i].mentionsSym(vid) {
			st.regs[i] = mkTop(st.regs[i].uni)
		}
	}
	for i := range st.preds {
		pf := &st.preds[i]
		if pf.ok && (pf.xv.mentionsSym(vid) || pf.yv.mentionsSym(vid)) {
			*pf = pfact{uni: pf.uni}
		}
	}
	kept := st.cons[:0]
	for _, c := range st.cons {
		touch := false
		for _, t := range c.ts {
			if t.v == vid {
				touch = true
				break
			}
		}
		if !touch {
			kept = append(kept, c)
		}
	}
	st.cons = kept
}

// --- fixpoint driver ---

func (ax *analysis) push(pc int) {
	if pc >= 0 && pc < len(ax.inWork) {
		ax.inWork[pc] = true
	}
}

func (ax *analysis) run() {
	n := len(ax.p.Instrs)
	if n == 0 {
		return
	}
	ax.entries = make([]state, n)
	ax.inWork = make([]bool, n)
	// Static in-degrees: a pc with a single in-edge is not a merge
	// point, so revisits of it during the fixpoint replace its entry
	// instead of joining (joining across rounds there would manufacture
	// spurious merges and degrade loop-carried values).
	ax.indeg = make([]int, n)
	ax.indeg[0]++ // implicit entry edge
	var sbuf []int
	for pc := range ax.p.Instrs {
		sbuf = ax.structSuccs(pc, sbuf[:0])
		for _, s := range sbuf {
			if s >= 0 && s < n {
				ax.indeg[s]++
			}
		}
	}

	init := state{live: true, regs: make([]rval, ax.p.NumRegs)}
	for i := range init.regs {
		init.regs[i] = mkConst(0) // register files are zero-initialized
	}
	ax.entries[0] = init
	ax.push(0)

	budget := 256*n + 8192
	for {
		pc := -1
		for i, w := range ax.inWork {
			if w {
				pc = i
				break
			}
		}
		if pc < 0 {
			break
		}
		ax.inWork[pc] = false
		budget--
		if budget < 0 {
			ax.converged = false
			return
		}
		for _, s := range ax.step(pc) {
			ax.flow(pc, s.pc, s.st)
		}
		if ax.symDirty {
			// A symbol's global range grew: transfer results depending on
			// it (shift residuals, full-range guards) are stale everywhere.
			ax.symDirty = false
			for i := range ax.entries {
				if ax.entries[i].live {
					ax.push(i)
				}
			}
		}
	}
}

type succ struct {
	pc int
	st state
}

// step processes one instruction from its entry state and returns the
// outgoing edges.
func (ax *analysis) step(pc int) []succ {
	st := cloneState(&ax.entries[pc])
	st.div = removeDiv(st.div, int32(pc)) // reconvergence on entry
	in := &ax.p.Instrs[pc]

	switch in.Op {
	case isa.EXIT:
		if in.Pred == isa.PT {
			return nil
		}
		// Survivors are the guard-false lanes. (Exited lanes do not
		// block barriers in either simulator, so a thread-dependent EXIT
		// is not barrier divergence.)
		if !ax.refineGuard(&st, in.Pred, in.PredNeg) {
			return nil
		}
		return []succ{{pc + 1, st}}

	case isa.BRA:
		if in.Pred == isa.PT {
			return []succ{{int(in.Target), st}}
		}
		pf := st.preds[in.Pred&7]
		divergent := !pf.uni
		join := divAll
		if pc > 0 && ax.p.Instrs[pc-1].Op == isa.SSY {
			join = ax.p.Instrs[pc-1].Target
		}
		taken := cloneState(&st)
		fall := st
		var out []succ
		if ax.refineGuard(&taken, in.Pred, !in.PredNeg) {
			if divergent {
				taken.div = addDiv(taken.div, join)
			}
			out = append(out, succ{int(in.Target), taken})
		}
		if ax.refineGuard(&fall, in.Pred, in.PredNeg) {
			if divergent {
				fall.div = addDiv(fall.div, join)
			}
			out = append(out, succ{pc + 1, fall})
		}
		return out

	default:
		ax.transfer(&st, in)
		return []succ{{pc + 1, st}}
	}
}

// flow merges an out-state into the entry of pc `to`.
func (ax *analysis) flow(from, to int, inc state) {
	if to < 0 || to >= len(ax.p.Instrs) {
		return
	}
	// Symbols homed here are being redefined: capture the incoming full
	// range of each home register first (its value is expressed in terms
	// of the PREVIOUS symbol value, whose range is still the one to fold
	// in), then scrub every stale mention from the incoming state.
	var homeFR map[int32]bounds.Interval
	for _, vid := range ax.homeSyms[to] {
		if homeFR == nil {
			homeFR = map[int32]bounds.Interval{}
		}
		homeFR[vid] = ax.fullRange(inc.regs[ax.vars[vid].homeReg])
	}
	for _, vid := range ax.homeSyms[to] {
		scrubSym(&inc, vid)
	}

	old := &ax.entries[to]
	if !old.live {
		ax.entries[to] = inc
		ax.push(to)
		return
	}
	// Single static in-edge: the entry here IS the predecessor's
	// out-state, so a revisit replaces it outright. Joining would treat
	// successive fixpoint rounds as a control-flow merge, spawning
	// symbols and widening along straight-line code.
	if ax.indeg[to] <= 1 {
		if !stateEq(old, &inc) {
			ax.entries[to] = inc
			ax.push(to)
		}
		return
	}
	back := to <= from
	d := hasDiv(old.div, int32(to)) || hasDiv(inc.div, int32(to)) ||
		hasDiv(old.div, divAll) || hasDiv(inc.div, divAll)
	changed := false
	needReset := false

	oncePhase := -1 // lazily resolved
	for r := range old.regs {
		a, b := old.regs[r], inc.regs[r]
		if eqRV(a, b) {
			continue
		}
		if vid, ok := ax.mergeSym[mergeKey{to, isa.Reg(r)}]; ok {
			fr, have := homeFR[vid]
			if !have {
				fr = ax.fullRange(b)
			}
			ax.growSym(vid, fr, back)
			tv := mkSym(vid)
			if !eqRV(a, tv) {
				old.regs[r] = tv
				changed = true
			}
			continue
		}
		// A merge of differing block-uniform values at a point that
		// executes at most once per barrier phase defines a phase
		// constant: name it, so both threads of a same-phase access pair
		// share it and it cancels in their address difference.
		if a.uni && b.uni && !d {
			if oncePhase < 0 {
				if ax.oncePerPhase(to) {
					oncePhase = 1
				} else {
					oncePhase = 0
				}
			}
			if oncePhase == 1 {
				vid := ax.newSym(to, isa.Reg(r), ax.fullRange(a).Join(ax.fullRange(b)))
				old.regs[r] = mkSym(vid)
				needReset = true
				changed = true
				continue
			}
		}
		j := joinRV(a, b, d)
		if back {
			j = widenRV(a, j)
			j.iv = widenIvThresh(a.iv, j.iv)
			if j.m == 0 && !j.iv.IsConst() {
				j.m, j.r = congNone()
			}
		}
		if !eqRV(a, j) {
			old.regs[r] = j
			changed = true
		}
	}

	for i := range old.preds {
		a, b := old.preds[i], inc.preds[i]
		if pfactEq(a, b) {
			continue
		}
		nu := pfact{uni: a.uni && b.uni && !d}
		// Matching facts from different fixpoint rounds (or converging
		// paths) join component-wise: the comparison shape is the same,
		// only the value snapshots differ, and the join of snapshots is
		// a sound snapshot. Killing the fact here instead would lose the
		// loop-bound refinement that keeps loop counters finite.
		if a.ok && b.ok && a.op == b.op && a.xr == b.xr && a.yr == b.yr {
			nu = pfact{
				ok: true, uni: nu.uni, op: a.op,
				xr: a.xr, yr: a.yr,
				xok: a.xok && b.xok, yok: a.yok && b.yok,
				xv: joinRV(a.xv, b.xv, d), yv: joinRV(a.yv, b.yv, d),
			}
			if back {
				nu.xv = widenRV(a.xv, nu.xv)
				nu.yv = widenRV(a.yv, nu.yv)
			}
		}
		if !pfactEq(a, nu) {
			old.preds[i] = nu
			changed = true
		}
	}

	nc := intersectCons(old.cons, inc.cons)
	if len(nc) != len(old.cons) {
		old.cons = nc
		changed = true
	}
	nd := unionDiv(old.div, inc.div)
	if len(nd) != len(old.div) {
		old.div = nd
		changed = true
	}
	if needReset {
		// A new symbol was minted at this merge, but earlier fixpoint
		// rounds already propagated the pre-symbol constant downstream.
		// A downstream merge would join that stale constant with the
		// fresh symbol and top out (the lattice has no "constant OR this
		// symbol" element), so discard every entry reachable from here
		// and let the fixpoint repopulate the region from the symbol.
		ax.resetDownstream(to)
	}
	if changed {
		ax.push(to)
	}
}

// resetDownstream discards the entries reachable from h (excluding h
// itself) and requeues every surviving live pc, so edges from outside
// the cleared region re-deliver their contributions. Bounded: symbol
// creation is memoized per (pc, reg), so each site resets once.
func (ax *analysis) resetDownstream(h int) {
	n := len(ax.p.Instrs)
	seen := make([]bool, n)
	stack := ax.structSuccs(h, nil)
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if q < 0 || q >= n || q == h || seen[q] {
			continue
		}
		seen[q] = true
		stack = ax.structSuccs(q, stack)
	}
	for pc, s := range seen {
		if s && ax.entries[pc].live {
			ax.entries[pc] = state{}
			ax.inWork[pc] = false
		}
	}
	for pc := range ax.entries {
		if ax.entries[pc].live {
			ax.push(pc)
		}
	}
}

// --- transfer functions (mirroring internal/sim/exec.go) ---

func (ax *analysis) get(st *state, r isa.Reg) rval {
	if r == isa.RZ {
		return mkConst(0)
	}
	return st.regs[r]
}

func (ax *analysis) opv(st *state, in *isa.Instr, i int) rval {
	if in.HasImm && i == in.Op.ImmSrcIndex() {
		return mkConst(int64(in.Imm))
	}
	return ax.get(st, in.Src[i])
}

func setReg(st *state, d isa.Reg, v rval) {
	if d == isa.RZ {
		return
	}
	st.regs[d] = v
	for i := range st.preds {
		pf := &st.preds[i]
		if pf.xok && pf.xr == d {
			pf.xok = false
		}
		if pf.yok && pf.yr == d {
			pf.yok = false
		}
	}
}

// normWidth applies the writeback width semantics: 64-bit ops keep the
// value if its mathematical range provably fits int64 (saturated
// bounds mean a possible wrap), 32-bit ops keep it if it fits int32
// (the machine wraps and sign-extends otherwise).
func (ax *analysis) normWidth(v rval, w64 bool) rval {
	if v.k != rkVal {
		return v
	}
	fr := ax.fullRange(v)
	if w64 {
		if fr.Lo <= negInf || fr.Hi >= posInf {
			return mkTop(v.uni)
		}
		return v
	}
	if fr.Lo >= -1<<31 && fr.Hi <= 1<<31-1 {
		return v
	}
	return mkTop(v.uni)
}

func (ax *analysis) mulRV(a, b rval) rval {
	if c, ok := a.isConst(); ok {
		return scaleRV(b, c)
	}
	if c, ok := b.isConst(); ok {
		return scaleRV(a, c)
	}
	uni := a.uni && b.uni
	if a.k != rkVal || b.k != rkVal {
		return mkTop(uni)
	}
	return mkResid(ax.fullRange(a).Mul(ax.fullRange(b)), uni)
}

func (ax *analysis) transfer(st *state, in *isa.Instr) {
	predicated := in.Pred != isa.PT
	guardUni := false
	if predicated {
		guardUni = st.preds[in.Pred&7].uni
	}

	switch in.Op {
	case isa.SETP:
		a, b := ax.opv(st, in, 0), ax.opv(st, in, 1)
		pf := pfact{
			ok: true, uni: a.uni && b.uni, op: isa.CmpOp(in.Aux),
			xv: a, yv: b, xr: in.Src[0], yr: isa.RZ,
		}
		pf.xok = in.Src[0] != isa.RZ
		if !in.HasImm && in.Src[1] != isa.RZ {
			pf.yr, pf.yok = in.Src[1], true
		}
		if predicated {
			old := st.preds[in.Dst&7]
			pf = pfact{uni: old.uni && a.uni && b.uni && guardUni}
		}
		st.preds[in.Dst&7] = pf
		return

	case isa.FSETP:
		a, b := ax.opv(st, in, 0), ax.opv(st, in, 1)
		uni := a.uni && b.uni
		if predicated {
			uni = uni && guardUni && st.preds[in.Dst&7].uni
		}
		st.preds[in.Dst&7] = pfact{uni: uni}
		return

	case isa.NOP, isa.SSY, isa.SYNC, isa.BAR, isa.TRAP, isa.FREE,
		isa.STG, isa.STS, isa.STL:
		return
	}

	v, wrote := ax.eval(st, in)
	if !wrote || in.Dst == isa.RZ {
		return
	}
	if predicated {
		// Guard-false lanes keep the old value; a thread-dependent guard
		// makes the merged value per-thread.
		v = joinRV(v, ax.get(st, in.Dst), !guardUni)
	}
	setReg(st, in.Dst, v)
}

// eval computes the destination value of a register-writing
// instruction. It mirrors the cycle simulator's exec.go semantics.
func (ax *analysis) eval(st *state, in *isa.Instr) (rval, bool) {
	w64 := in.W64()
	switch in.Op {
	case isa.MOV:
		return ax.opv(st, in, 0), true

	case isa.IADD:
		v := addRV(ax.opv(st, in, 0), ax.opv(st, in, 1))
		return ax.normWidth(v, w64), true

	case isa.IADD3:
		v := addRV(addRV(ax.opv(st, in, 0), ax.opv(st, in, 1)), ax.opv(st, in, 2))
		return ax.normWidth(v, w64), true

	case isa.IMUL:
		v := ax.mulRV(ax.opv(st, in, 0), ax.opv(st, in, 1))
		return ax.normWidth(v, w64), true

	case isa.IMAD:
		v := addRV(ax.mulRV(ax.opv(st, in, 0), ax.opv(st, in, 1)), ax.opv(st, in, 2))
		return ax.normWidth(v, w64), true

	case isa.IMNMX:
		a, b := ax.opv(st, in, 0), ax.opv(st, in, 1)
		uni := a.uni && b.uni
		if a.k != rkVal || b.k != rkVal {
			return mkTop(uni), true
		}
		fa, fb := ax.fullRange(a), ax.fullRange(b)
		var iv bounds.Interval
		if in.Aux == 1 { // Aux 1 = max (exec.go)
			iv = fa.Max(fb)
		} else {
			iv = fa.Min(fb)
		}
		return ax.normWidth(mkResid(iv, uni), w64), true

	case isa.SHL:
		a, b := ax.opv(st, in, 0), ax.opv(st, in, 1)
		s, ok := b.isConst()
		if !ok {
			return mkTop(a.uni && b.uni), true
		}
		if w64 {
			s &= 63
		} else {
			s &= 31
		}
		if w64 && s >= core.ExtentShift {
			// The LMI tag-injection idiom: an extent constant shifted into
			// the tag field. Tracked as extent material so the following
			// OR can treat it as address-neutral.
			return rval{k: rkExt, uni: a.uni, iv: ivTop(), m: 1}, true
		}
		if s >= 62 {
			return mkTop(a.uni), true
		}
		return ax.normWidth(scaleRV(a, int64(1)<<uint(s)), w64), true

	case isa.SHR:
		a, b := ax.opv(st, in, 0), ax.opv(st, in, 1)
		s, ok := b.isConst()
		if !ok || a.k != rkVal {
			return mkTop(a.uni && b.uni), true
		}
		fr := ax.fullRange(a)
		if fr.Lo < 0 {
			return mkTop(a.uni), true
		}
		if w64 {
			s &= 63
		} else {
			s &= 31
			if fr.Hi > 1<<31-1 {
				return mkTop(a.uni), true
			}
		}
		if s == 0 {
			return a, true
		}
		if fr.Hi >= posInf {
			return mkResid(bounds.Interval{Lo: 0, Hi: posInf}, a.uni), true
		}
		return mkResid(bounds.Interval{Lo: fr.Lo >> uint(s), Hi: fr.Hi >> uint(s)}, a.uni), true

	case isa.AND:
		a, b := ax.opv(st, in, 0), ax.opv(st, in, 1)
		if ca, ok := a.isConst(); ok {
			if cb, ok2 := b.isConst(); ok2 {
				return ax.normWidth(mkConst(ca&cb), w64), true
			}
		}
		if v, ok := ax.andMask(a, b); ok {
			return ax.normWidth(v, w64), true
		}
		if v, ok := ax.andMask(b, a); ok {
			return ax.normWidth(v, w64), true
		}
		uni := a.uni && b.uni
		if a.k == rkVal && b.k == rkVal {
			fa, fb := ax.fullRange(a), ax.fullRange(b)
			if fa.Lo >= 0 && fb.Lo >= 0 {
				hi := fa.Hi
				if fb.Hi < hi {
					hi = fb.Hi
				}
				return ax.normWidth(mkResid(bounds.Interval{Lo: 0, Hi: hi}, uni), w64), true
			}
		}
		return mkTop(uni), true

	case isa.OR:
		a, b := ax.opv(st, in, 0), ax.opv(st, in, 1)
		uni := a.uni && b.uni
		if w64 && a.k == rkExt && b.k != rkExt {
			// Attaching tag bits above the address field leaves the
			// canonical address unchanged; both threads of a pair attach
			// the same compile-time extent, so the high bits cancel in any
			// address difference.
			b.uni = uni
			return b, true
		}
		if w64 && b.k == rkExt && a.k != rkExt {
			a.uni = uni
			return a, true
		}
		if ca, ok := a.isConst(); ok {
			if cb, ok2 := b.isConst(); ok2 {
				return ax.normWidth(mkConst(ca|cb), w64), true
			}
		}
		if a.k == rkVal && b.k == rkVal {
			fa, fb := ax.fullRange(a), ax.fullRange(b)
			if fa.Lo >= 0 && fb.Lo >= 0 {
				lo := fa.Lo
				if fb.Lo > lo {
					lo = fb.Lo
				}
				return ax.normWidth(mkResid(bounds.Interval{Lo: lo, Hi: fa.Add(fb).Hi}, uni), w64), true
			}
		}
		return mkTop(uni), true

	case isa.XOR:
		a, b := ax.opv(st, in, 0), ax.opv(st, in, 1)
		if ca, ok := a.isConst(); ok {
			if cb, ok2 := b.isConst(); ok2 {
				return ax.normWidth(mkConst(ca^cb), w64), true
			}
		}
		return mkTop(a.uni && b.uni), true

	case isa.SEL:
		a, b := ax.opv(st, in, 0), ax.opv(st, in, 1)
		sel := in.Aux & 7
		if isa.PredReg(sel) == isa.PT {
			return a, true
		}
		pf := st.preds[sel]
		return joinRV(a, b, !pf.uni), true

	case isa.S2R:
		return ax.special(isa.SReg(in.Aux)), true

	case isa.LDC:
		return ax.ldc(st, in), true

	case isa.LDG, isa.LDS, isa.LDL, isa.ATOMG, isa.ATOMS, isa.MALLOC:
		return mkTop(false), in.Dst != isa.RZ

	case isa.FADD, isa.FMUL, isa.MUFU, isa.F2I, isa.I2F:
		a := ax.opv(st, in, 0)
		uni := a.uni
		if in.Op == isa.FADD || in.Op == isa.FMUL {
			uni = uni && ax.opv(st, in, 1).uni
		}
		return mkTop(uni), true

	case isa.FFMA:
		uni := ax.opv(st, in, 0).uni && ax.opv(st, in, 1).uni && ax.opv(st, in, 2).uni
		return mkTop(uni), true
	}
	return mkTop(false), false
}

// andMask handles AND with a constant non-negative mask m: when m+1 is
// a power of two and the other operand provably lies in [0, m], the
// AND is the identity (keeping affine structure and congruence);
// otherwise the result still lands in [0, m].
func (ax *analysis) andMask(a, mask rval) (rval, bool) {
	cb, ok := mask.isConst()
	if !ok || cb < 0 {
		return rval{}, false
	}
	uni := a.uni && mask.uni
	if (cb+1)&cb == 0 && a.k == rkVal {
		fr := ax.fullRange(a)
		if fr.Lo >= 0 && fr.Hi <= cb {
			a.uni = uni
			return a, true
		}
	}
	return mkResid(bounds.Interval{Lo: 0, Hi: cb}, uni), true
}

func (ax *analysis) special(sr isa.SReg) rval {
	switch sr {
	case isa.SRTidX:
		if ax.bx == 1 {
			return mkConst(0)
		}
		return rval{k: rkVal, uni: false, cx: 1, iv: ivSingle(0), m: 0, r: 0}
	case isa.SRTidY:
		if ax.by == 1 {
			return mkConst(0)
		}
		return rval{k: rkVal, uni: false, cy: 1, iv: ivSingle(0), m: 0, r: 0}
	case isa.SRNtidX:
		return mkConst(ax.bx)
	case isa.SRNtidY:
		return mkConst(ax.by)
	case isa.SRNctaidX:
		return mkConst(ax.gx)
	case isa.SRNctaidY:
		return mkConst(ax.gy)
	case isa.SRCtaidX:
		if ax.gx == 1 {
			return mkConst(0)
		}
		return mkSym(varCtaidX)
	case isa.SRCtaidY:
		if ax.gy == 1 {
			return mkConst(0)
		}
		return mkSym(varCtaidY)
	default: // lane id, warp id, SM id: per-thread
		return mkTop(false)
	}
}

func (ax *analysis) ldc(st *state, in *isa.Instr) rval {
	// Constant-bank reads are launch-uniform by construction.
	base, ok := ax.opv(st, in, 0).isConst()
	if !ok && in.Src[0] != isa.RZ {
		return mkTop(true)
	}
	off := int(base) + int(int64(in.Imm))
	if off == ax.p.StackPtrConst {
		return mkTop(true)
	}
	if off >= ax.p.ParamBase && (off-ax.p.ParamBase)%8 == 0 {
		idx := (off - ax.p.ParamBase) / 8
		if idx < ax.p.NumParams {
			if idx < len(ax.p.ParamPtrs) && ax.p.ParamPtrs[idx] {
				return mkTop(true)
			}
			return mkSym(varParam0 + int32(idx))
		}
	}
	return mkTop(true)
}

// --- edge refinement ---

func negCmp(op isa.CmpOp) isa.CmpOp {
	switch op {
	case isa.CmpLT:
		return isa.CmpGE
	case isa.CmpLE:
		return isa.CmpGT
	case isa.CmpGT:
		return isa.CmpLE
	case isa.CmpGE:
		return isa.CmpLT
	case isa.CmpEQ:
		return isa.CmpNE
	default:
		return isa.CmpEQ
	}
}

// swapCmp rewrites (x op y) as (y op' x).
func swapCmp(op isa.CmpOp) isa.CmpOp {
	switch op {
	case isa.CmpLT:
		return isa.CmpGT
	case isa.CmpLE:
		return isa.CmpGE
	case isa.CmpGT:
		return isa.CmpLT
	case isa.CmpGE:
		return isa.CmpLE
	default:
		return op
	}
}

func cmpConstHolds(op isa.CmpOp, d int64) bool {
	switch op {
	case isa.CmpLT:
		return d < 0
	case isa.CmpLE:
		return d <= 0
	case isa.CmpGT:
		return d > 0
	case isa.CmpGE:
		return d >= 0
	case isa.CmpEQ:
		return d == 0
	default:
		return d != 0
	}
}

// refineGuard sharpens st along an edge where predicate register pr is
// known to hold bit value bit. Returns false when the edge is provably
// infeasible.
func (ax *analysis) refineGuard(st *state, pr isa.PredReg, bit bool) bool {
	pf := st.preds[pr&7]
	if !pf.ok {
		return true
	}
	op := pf.op
	if !bit {
		op = negCmp(op)
	}
	d := subRV(pf.xv, pf.yv)
	if d.k == rkVal && !d.hasAffine() && d.iv.IsConst() {
		return cmpConstHolds(op, d.iv.Lo)
	}
	// Path constraint over tids and symbols, from the snapshot values.
	for _, c := range conFromCmp(d, op) {
		st.cons = addCon(st.cons, c)
	}
	// Residual-interval tightening of the operand registers that still
	// hold the compared values.
	if pf.xok && pf.xr != isa.RZ {
		if !ax.tighten(st, pf.xr, op, pf.yv) {
			return false
		}
	}
	if pf.yok && pf.yr != isa.RZ {
		if !ax.tighten(st, pf.yr, swapCmp(op), pf.xv) {
			return false
		}
	}
	return true
}

// conFromCmp extracts linear constraints from d = x - y under (x op y),
// bounding the affine part of d by its residual extremes.
func conFromCmp(d rval, op isa.CmpOp) []lincon {
	if d.k != rkVal || !d.hasAffine() {
		return nil
	}
	ts := make([]term, 0, len(d.terms)+2)
	if d.cx != 0 {
		ts = append(ts, term{v: varTidX, coef: d.cx})
	}
	if d.cy != 0 {
		ts = append(ts, term{v: varTidY, coef: d.cy})
	}
	ts = append(ts, d.terms...)
	neg := func() []term {
		out := make([]term, len(ts))
		for i, t := range ts {
			c, ok := ckMul(t.coef, -1)
			if !ok {
				return nil
			}
			out[i] = term{v: t.v, coef: c}
		}
		return out
	}
	var out []lincon
	upper := func(adj int64) { // aff <= -adj - d.iv.Lo
		if d.iv.Lo > negInf {
			if c, ok := ckAdd(-adj, -d.iv.Lo); ok {
				out = append(out, lincon{ts: ts, c: c})
			}
		}
	}
	lower := func(adj int64) { // -aff <= d.iv.Hi - adj
		if d.iv.Hi < posInf {
			if nts := neg(); nts != nil {
				if c, ok := ckAdd(d.iv.Hi, -adj); ok {
					out = append(out, lincon{ts: nts, c: c})
				}
			}
		}
	}
	switch op {
	case isa.CmpLT:
		upper(1)
	case isa.CmpLE:
		upper(0)
	case isa.CmpGT:
		lower(1)
	case isa.CmpGE:
		lower(0)
	case isa.CmpEQ:
		upper(0)
		lower(0)
	}
	return out
}

// tighten clamps the residual interval of register r under (r op yv).
// Returns false when the edge is infeasible.
func (ax *analysis) tighten(st *state, r isa.Reg, op isa.CmpOp, yv rval) bool {
	v := st.regs[r]
	if v.k != rkVal {
		return true
	}
	fy := ax.fullRange(yv)
	affx := ax.affRange(v)
	lo, hi := int64(negInf), int64(posInf)
	switch op {
	case isa.CmpLT, isa.CmpLE, isa.CmpEQ:
		adj := int64(0)
		if op == isa.CmpLT {
			adj = 1
		}
		if fy.Hi < posInf && affx.Lo > negInf {
			if h, ok := ckAdd(fy.Hi, -adj); ok {
				if h2, ok2 := ckAdd(h, -affx.Lo); ok2 {
					hi = h2
				}
			}
		}
	}
	switch op {
	case isa.CmpGT, isa.CmpGE, isa.CmpEQ:
		adj := int64(0)
		if op == isa.CmpGT {
			adj = 1
		}
		if fy.Lo > negInf && affx.Hi < posInf {
			if l, ok := ckAdd(fy.Lo, adj); ok {
				if l2, ok2 := ckAdd(l, -affx.Hi); ok2 {
					lo = l2
				}
			}
		}
	}
	if lo == negInf && hi == posInf {
		return true
	}
	if !clampResid(&v, lo, hi) {
		return false
	}
	st.regs[r] = v
	return true
}

// clampResid intersects the residual interval of v with [lo, hi],
// maintaining the exactness invariant. Returns false when the
// intersection is empty (the path is infeasible).
func clampResid(v *rval, lo, hi int64) bool {
	if v.k != rkVal {
		return true
	}
	nlo, nhi := v.iv.Lo, v.iv.Hi
	if lo > nlo {
		nlo = lo
	}
	if hi < nhi {
		nhi = hi
	}
	if nlo > nhi {
		return false
	}
	if v.m == 0 {
		return true // exact residual already inside
	}
	v.iv = bounds.Interval{Lo: nlo, Hi: nhi}
	if v.iv.IsConst() {
		if v.m >= 2 && mod(v.iv.Lo, v.m) != v.r {
			return false
		}
		v.m, v.r = 0, v.iv.Lo
	}
	return true
}

// --- structural CFG helpers ---

// structSuccs are the static successors of pc, ignoring barrier cuts.
func (ax *analysis) structSuccs(pc int, buf []int) []int {
	in := &ax.p.Instrs[pc]
	switch in.Op {
	case isa.BRA:
		if in.Pred == isa.PT {
			return append(buf, int(in.Target))
		}
		return append(buf, int(in.Target), pc+1)
	case isa.EXIT:
		if in.Pred == isa.PT {
			return buf
		}
		return append(buf, pc+1)
	default:
		if pc+1 < len(ax.p.Instrs) {
			return append(buf, pc+1)
		}
		return buf
	}
}

// oncePerPhase reports whether pc cannot re-execute within one barrier
// phase: every static cycle through pc crosses an unpredicated BAR.
func (ax *analysis) oncePerPhase(pc int) bool {
	if v, ok := ax.oncePhaseMemo[pc]; ok {
		return v
	}
	seen := make([]bool, len(ax.p.Instrs))
	stack := ax.structSuccs(pc, nil)
	res := true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if q < 0 || q >= len(seen) {
			continue
		}
		if q == pc {
			res = false
			break
		}
		if seen[q] {
			continue
		}
		seen[q] = true
		in := &ax.p.Instrs[q]
		if in.Op == isa.BAR && in.Pred == isa.PT {
			continue // the phase ends here
		}
		stack = ax.structSuccs(q, stack)
	}
	ax.oncePhaseMemo[pc] = res
	return res
}

// phaseRegions returns, for each phase source (program entry and every
// point just after a BAR), the set of PCs reachable without crossing
// an unpredicated BAR. Two accesses can race only if they share a
// region. Predicated BARs are conservatively non-cutting but still
// open a region (they may or may not fire).
func (ax *analysis) phaseRegions() [][]bool {
	n := len(ax.p.Instrs)
	var sources []int
	sources = append(sources, 0)
	for pc, in := range ax.p.Instrs {
		if in.Op == isa.BAR && pc+1 < n {
			sources = append(sources, pc+1)
		}
	}
	regions := make([][]bool, 0, len(sources))
	for _, src := range sources {
		seen := make([]bool, n)
		stack := []int{src}
		for len(stack) > 0 {
			q := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if q < 0 || q >= n || seen[q] {
				continue
			}
			seen[q] = true
			in := &ax.p.Instrs[q]
			if in.Op == isa.BAR && in.Pred == isa.PT {
				continue
			}
			stack = ax.structSuccs(q, stack)
		}
		regions = append(regions, seen)
	}
	return regions
}

// --- reporting ---

func (ax *analysis) addDiag(d Diag) {
	if ax.src != nil {
		if d.PC >= 0 && d.PC < len(ax.src) {
			d.Loc = ax.src[d.PC]
		}
		if d.OtherPC >= 0 && d.OtherPC < len(ax.src) {
			d.OtherLoc = ax.src[d.OtherPC]
		}
	}
	k := diagKey{kind: d.Kind, race: d.Race, pc: d.PC, opc: d.OtherPC}
	if _, ok := ax.diags[k]; !ok {
		ax.diags[k] = d
	}
}

func classifyPair(a, b sim.RaceAccessKind) sim.RaceKind {
	if a == sim.RaceRead || b == sim.RaceRead {
		return sim.RaceRW
	}
	if a == sim.RaceAtomic || b == sim.RaceAtomic {
		return sim.RaceAW
	}
	return sim.RaceWW
}

func accKindOf(op isa.Opcode) sim.RaceAccessKind {
	switch op {
	case isa.ATOMS:
		return sim.RaceAtomic
	case isa.STS:
		return sim.RaceWrite
	default:
		return sim.RaceRead
	}
}

func (ax *analysis) report() *Result {
	res := &Result{Converged: ax.converged}
	if !ax.converged {
		ax.addDiag(Diag{Kind: KindNoConverge, PC: -1, OtherPC: -1,
			Msg: "analysis did not converge within budget"})
	}

	if ax.converged {
		ax.divergenceDiags()
		ax.raceDiags()
	}

	for _, d := range ax.diags {
		res.Diags = append(res.Diags, d)
	}
	sort.Slice(res.Diags, func(i, j int) bool {
		a, b := res.Diags[i], res.Diags[j]
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		if a.OtherPC != b.OtherPC {
			return a.OtherPC < b.OtherPC
		}
		return a.Kind < b.Kind
	})
	res.SharedAccesses = ax.sharedAccesses
	res.PairsTested = ax.pairsTested
	res.Phases = ax.phases
	return res
}

func (ax *analysis) divergenceDiags() {
	for pc := range ax.p.Instrs {
		in := &ax.p.Instrs[pc]
		if in.Op != isa.BAR || !ax.entries[pc].live {
			continue
		}
		if dv := removeDiv(ax.entries[pc].div, int32(pc)); len(dv) > 0 {
			ax.addDiag(Diag{Kind: KindBarrierDivergence, PC: pc, OtherPC: -1,
				Msg: fmt.Sprintf("pc %d: %s reachable inside an unreconverged thread-dependent branch", pc, in)})
		}
		if in.Pred != isa.PT && !ax.entries[pc].preds[in.Pred&7].uni {
			ax.addDiag(Diag{Kind: KindBarrierDivergence, PC: pc, OtherPC: -1,
				Msg: fmt.Sprintf("pc %d: %s guarded by a thread-dependent predicate", pc, in)})
		}
	}
}

func (ax *analysis) raceDiags() {
	regions := ax.phaseRegions()
	ax.phases = len(regions)

	var accs []*access
	for pc := range ax.p.Instrs {
		in := &ax.p.Instrs[pc]
		if !ax.entries[pc].live {
			continue
		}
		switch in.Op {
		case isa.LDS, isa.STS, isa.ATOMS:
		default:
			continue
		}
		ax.sharedAccesses++
		st := &ax.entries[pc]
		addr := addRV(ax.get(st, in.Src[0]), mkConst(int64(in.Imm)))
		a := &access{
			pc:   pc,
			kind: accKindOf(in.Op),
			size: int64(in.AccSize()),
			rv:   addr,
			cons: append([]lincon(nil), st.cons...),
		}
		if in.Pred != isa.PT {
			pf := st.preds[in.Pred&7]
			if pf.ok {
				op := pf.op
				if in.PredNeg {
					op = negCmp(op)
				}
				for _, c := range conFromCmp(subRV(pf.xv, pf.yv), op) {
					a.cons = addCon(a.cons, c)
				}
			}
		}
		if addr.k != rkVal {
			ax.addDiag(Diag{Kind: KindUnknownAddress, PC: pc, OtherPC: -1,
				Msg: fmt.Sprintf("pc %d: %s: shared address not statically expressible", pc, in)})
			continue
		}
		for ri, rg := range regions {
			if rg[pc] {
				a.regions = append(a.regions, ri)
			}
		}
		accs = append(accs, a)
	}

	shareRegion := func(a, b *access) bool {
		for _, ra := range a.regions {
			for _, rb := range b.regions {
				if ra == rb {
					return true
				}
			}
		}
		return false
	}

	for i := 0; i < len(accs); i++ {
		for j := i; j < len(accs); j++ {
			a, b := accs[i], accs[j]
			if a.kind == sim.RaceRead && b.kind == sim.RaceRead {
				continue
			}
			if a.kind == sim.RaceAtomic && b.kind == sim.RaceAtomic {
				continue // atomic adds commute
			}
			if !shareRegion(a, b) {
				continue
			}
			ax.pairsTested++
			if ax.overlapPossible(a, b) {
				rk := classifyPair(a.kind, b.kind)
				ax.addDiag(Diag{Kind: KindRace, Race: rk, PC: a.pc, OtherPC: b.pc,
					Msg: fmt.Sprintf("possible %s race: pc %d %s vs pc %d %s",
						rk, a.pc, &ax.p.Instrs[a.pc], b.pc, &ax.p.Instrs[b.pc])})
			}
		}
	}
}
