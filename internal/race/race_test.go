package race

import (
	"testing"

	"lmi/internal/apps"
	"lmi/internal/bounds"
	"lmi/internal/compiler"
	"lmi/internal/ir"
	"lmi/internal/isa"
	"lmi/internal/sim"
	"lmi/internal/workloads"
)

// TestCorpusStaticallyClean proves the whole Table V workload corpus
// race- and divergence-free in both compile modes, before and after
// the peephole optimizer, under each workload's launch contract. This
// is the static half of the differential validation; the dynamic race
// oracle covers the same corpus in the sim and fastsim tests.
func TestCorpusStaticallyClean(t *testing.T) {
	anyShared := false
	for _, s := range workloads.All() {
		f, err := s.Kernel()
		if err != nil {
			t.Fatalf("%s: kernel: %v", s.Name, err)
		}
		c := s.Contract()
		for _, mode := range []compiler.Mode{compiler.ModeBase, compiler.ModeLMI} {
			p, src, err := compiler.CompileWithSourceMap(f, mode)
			if err != nil {
				t.Fatalf("%s/%v: compile: %v", s.Name, mode, err)
			}
			for _, opt := range []bool{false, true} {
				prog, smap := p, src
				label := "raw"
				if opt {
					prog, smap = compiler.Optimize(p), nil
					label = "opt"
				}
				res := Analyze(prog, c, smap)
				if !res.Converged {
					t.Fatalf("%s/%v/%s: analysis did not converge", s.Name, mode, label)
				}
				for _, d := range res.Diags {
					t.Errorf("%s/%v/%s: %v: %s", s.Name, mode, label, d.Kind, d.Msg)
				}
				if res.SharedAccesses > 0 {
					anyShared = true
				}
			}
		}
		// The elide pipeline emits E hints but must summarize identically.
		pe, esrc, _, err := compiler.CompileElidedWithSourceMap(f, c)
		if err != nil {
			t.Fatalf("%s/elide: compile: %v", s.Name, err)
		}
		res := Analyze(pe, c, esrc)
		for _, d := range res.Diags {
			t.Errorf("%s/elide: %v: %s", s.Name, d.Kind, d.Msg)
		}
	}
	if !anyShared {
		t.Fatalf("corpus exercised no shared-memory accesses; the gate is vacuous")
	}
}

// appContracts pairs each app kernel with its canonical launch
// geometry from the apps package — the same pairing lmi-lint -race
// sweeps.
func appContracts() []struct {
	f *ir.Func
	c bounds.Contract
} {
	fs, cs := apps.All(), apps.Contracts()
	out := make([]struct {
		f *ir.Func
		c bounds.Contract
	}, len(fs))
	for i := range fs {
		out[i].f, out[i].c = fs[i], cs[i]
	}
	return out
}

// TestAppsStaticallyClean proves the real-algorithm kernels — tiled
// matmul's double-buffered tiles, the tree reduction's halving stride,
// BFS's data-dependent loops — race- and divergence-free.
func TestAppsStaticallyClean(t *testing.T) {
	sharedApps := 0
	for _, ac := range appContracts() {
		for _, mode := range []compiler.Mode{compiler.ModeBase, compiler.ModeLMI} {
			p, src, err := compiler.CompileWithSourceMap(ac.f, mode)
			if err != nil {
				t.Fatalf("%s/%v: compile: %v", ac.f.Name, mode, err)
			}
			for _, opt := range []bool{false, true} {
				prog, smap := p, src
				if opt {
					prog, smap = compiler.Optimize(p), nil
				}
				res := Analyze(prog, ac.c, smap)
				if !res.Converged {
					t.Fatalf("%s/%v/opt=%v: did not converge", ac.f.Name, mode, opt)
				}
				for _, d := range res.Diags {
					t.Errorf("%s/%v/opt=%v: %v: %s", ac.f.Name, mode, opt, d.Kind, d.Msg)
				}
				if res.SharedAccesses > 0 && mode == compiler.ModeBase && !opt {
					sharedApps++
				}
			}
		}
	}
	if sharedApps < 2 {
		t.Fatalf("expected matmul and reduce to exercise shared memory, got %d apps", sharedApps)
	}
}

// buildAndAnalyze compiles an IR kernel and runs the analyzer.
func buildAndAnalyze(t *testing.T, f *ir.Func, c bounds.Contract) (*Result, *isa.Program) {
	t.Helper()
	p, src, err := compiler.CompileWithSourceMap(f, compiler.ModeLMI)
	if err != nil {
		t.Fatalf("%s: compile: %v", f.Name, err)
	}
	res := Analyze(p, c, src)
	if !res.Converged {
		t.Fatalf("%s: analysis did not converge", f.Name)
	}
	return res, p
}

func contract1D(block, grid int64) bounds.Contract {
	return bounds.Contract{CountParam: -1, BlockDimX: block, GridDimX: grid}
}

// findRace returns the race diagnostics of a result.
func races(res *Result) []Diag {
	var out []Diag
	for _, d := range res.Diags {
		if d.Kind == KindRace {
			out = append(out, d)
		}
	}
	return out
}

// pcOf finds the single instruction with opcode op, failing the test
// if it is absent or ambiguous.
func pcOf(t *testing.T, p *isa.Program, op isa.Opcode) int {
	t.Helper()
	pc := -1
	for i := range p.Instrs {
		if p.Instrs[i].Op == op {
			if pc >= 0 {
				t.Fatalf("multiple %v instructions", op)
			}
			pc = i
		}
	}
	if pc < 0 {
		t.Fatalf("no %v instruction", op)
	}
	return pc
}

// TestMissingBarrierRace plants the canonical neighbour-exchange bug:
// each thread stores sh[tid] and reads sh[tid+1] with no barrier
// between. The analyzer must pin a read-write race on exactly the STS
// and LDS instructions, and adding the barrier back must prove the
// kernel clean.
func TestMissingBarrierRace(t *testing.T) {
	build := func(withBarrier bool) *ir.Func {
		b := ir.NewBuilder("neighbour_exchange")
		out := b.Param(ir.PtrGlobal)
		sh := b.Shared(65 * 4)
		tid := b.TID()
		b.Store(b.GEP(sh, tid, 4, 0), tid, 0)
		if withBarrier {
			b.Barrier()
		}
		v := b.Load(ir.I32, b.GEP(sh, b.Add(tid, b.ConstI(ir.I32, 1)), 4, 0), 0)
		b.Store(b.GEP(out, tid, 4, 0), v, 0)
		return b.MustFinish()
	}

	res, p := buildAndAnalyze(t, build(false), contract1D(64, 1))
	rs := races(res)
	if len(rs) != 1 {
		t.Fatalf("want exactly 1 race, got %d: %+v", len(rs), res.Diags)
	}
	sts := pcOf(t, p, isa.STS)
	lds := pcOf(t, p, isa.LDS)
	want := Diag{PC: sts, OtherPC: lds}
	if sts > lds {
		want = Diag{PC: lds, OtherPC: sts}
	}
	if rs[0].PC != want.PC || rs[0].OtherPC != want.OtherPC || rs[0].Race != sim.RaceRW {
		t.Fatalf("race mispinned: got pc=%d other=%d kind=%v, want pc=%d other=%d kind=%v",
			rs[0].PC, rs[0].OtherPC, rs[0].Race, want.PC, want.OtherPC, sim.RaceRW)
	}

	if res2, _ := buildAndAnalyze(t, build(true), contract1D(64, 1)); !res2.Clean() {
		t.Fatalf("barrier variant should be clean, got %+v", res2.Diags)
	}
}

// TestWriteWriteRace plants a stride collision: every thread writes
// sh[tid>>1], so thread pairs (2k, 2k+1) collide write-write.
func TestWriteWriteRace(t *testing.T) {
	b := ir.NewBuilder("stride_collide")
	out := b.Param(ir.PtrGlobal)
	sh := b.Shared(64 * 4)
	tid := b.TID()
	slot := b.Shr(tid, b.ConstI(ir.I32, 1))
	b.Store(b.GEP(sh, slot, 4, 0), tid, 0)
	b.Barrier()
	b.Store(b.GEP(out, tid, 4, 0), b.Load(ir.I32, b.GEP(sh, tid, 4, 0), 0), 0)
	f := b.MustFinish()

	res, p := buildAndAnalyze(t, f, contract1D(64, 1))
	sts := pcOf(t, p, isa.STS)
	found := false
	for _, d := range races(res) {
		if d.Race == sim.RaceWW && d.PC == sts && d.OtherPC == sts {
			found = true
		}
	}
	if !found {
		t.Fatalf("want self write-write race at STS pc %d, got %+v", sts, res.Diags)
	}
}

// TestAtomicVsStoreRace plants an ATOMS/STS conflict on sh[0]: atomics
// commute with each other but not with a plain store.
func TestAtomicVsStoreRace(t *testing.T) {
	b := ir.NewBuilder("atomic_vs_store")
	out := b.Param(ir.PtrGlobal)
	sh := b.Shared(4)
	tid := b.TID()
	b.AtomicAdd(sh, tid, 0)
	b.If(b.ICmp(isa.CmpEQ, tid, b.ConstI(ir.I32, 0)), func() {
		b.Store(sh, b.ConstI(ir.I32, 7), 0)
	}, nil)
	b.Barrier()
	b.Store(b.GEP(out, tid, 4, 0), b.Load(ir.I32, sh, 0), 0)
	f := b.MustFinish()

	res, p := buildAndAnalyze(t, f, contract1D(64, 1))
	atoms := pcOf(t, p, isa.ATOMS)
	sts := pcOf(t, p, isa.STS)
	lo, hi := atoms, sts
	if lo > hi {
		lo, hi = hi, lo
	}
	rs := races(res)
	if len(rs) != 1 || rs[0].Race != sim.RaceAW || rs[0].PC != lo || rs[0].OtherPC != hi {
		t.Fatalf("want exactly one atomic-write race (%d,%d), got %+v", lo, hi, rs)
	}
}

// TestBarrierDivergence plants a BAR inside a thread-dependent branch
// and expects a divergence diagnostic pinned on the BAR; the uniform
// variant of the same shape must be clean.
func TestBarrierDivergence(t *testing.T) {
	build := func(uniformGuard bool) *ir.Func {
		b := ir.NewBuilder("divergent_barrier")
		out := b.Param(ir.PtrGlobal)
		tid := b.TID()
		guard := tid
		if uniformGuard {
			guard = b.Special(isa.SRNctaidX) // launch constant
		}
		b.If(b.ICmp(isa.CmpLT, guard, b.ConstI(ir.I32, 16)), func() {
			b.Barrier()
		}, nil)
		b.Store(b.GEP(out, tid, 4, 0), tid, 0)
		return b.MustFinish()
	}

	res, p := buildAndAnalyze(t, build(false), contract1D(64, 1))
	bar := pcOf(t, p, isa.BAR)
	found := false
	for _, d := range res.Diags {
		if d.Kind == KindBarrierDivergence && d.PC == bar {
			found = true
		}
	}
	if !found {
		t.Fatalf("want barrier-divergence at BAR pc %d, got %+v", bar, res.Diags)
	}

	if res2, _ := buildAndAnalyze(t, build(true), contract1D(64, 1)); !res2.Clean() {
		t.Fatalf("uniform-guard variant should be clean, got %+v", res2.Diags)
	}
}

// TestGridStrideSeedClean checks the congruence engine directly: a
// grid-stride seeding loop writes sh[tid + k*NTID], whose self-pair is
// only provable via the modulo-NTID residue of the index.
func TestGridStrideSeedClean(t *testing.T) {
	b := ir.NewBuilder("grid_stride_seed")
	out := b.Param(ir.PtrGlobal)
	const words = 256
	sh := b.Shared(words * 4)
	tid := b.TID()
	idx := b.Var(tid)
	b.While(func() ir.Value { return b.ICmp(isa.CmpLT, idx, b.ConstI(ir.I32, words)) }, func() {
		b.Store(b.GEP(sh, idx, 4, 0), idx, 0)
		b.Assign(idx, b.Add(idx, b.NTID()))
	})
	b.Barrier()
	b.Store(b.GEP(out, tid, 4, 0), b.Load(ir.I32, b.GEP(sh, tid, 4, 0), 0), 0)
	f := b.MustFinish()

	res, _ := buildAndAnalyze(t, f, contract1D(64, 1))
	if !res.Clean() {
		t.Fatalf("grid-stride seed should be clean, got %+v", res.Diags)
	}
	if res.SharedAccesses < 2 {
		t.Fatalf("expected >= 2 shared accesses, got %d", res.SharedAccesses)
	}
}

// --- unit tests for the decision kernels ---

func TestCongruence(t *testing.T) {
	if m, r := congAdd(0, 3, 0, 4); m != 0 || r != 7 {
		t.Fatalf("congAdd exact: got (%d,%d)", m, r)
	}
	if m, r := congAdd(128, 5, 0, 3); m != 128 || r != 8 {
		t.Fatalf("congAdd shift: got (%d,%d)", m, r)
	}
	if m, r := congJoin(0, 0, 0, 128); m != 128 || r != 0 {
		t.Fatalf("congJoin consts: got (%d,%d)", m, r)
	}
	if m, r := congScale(128, 8, 4); m != 512 || r != 32 {
		t.Fatalf("congScale: got (%d,%d)", m, r)
	}
	if congWitness(512, 0, -511, -1) {
		t.Fatalf("congWitness: no multiple of 512 lies in [-511,-1]")
	}
	if !congWitness(512, 0, -512, -1) {
		t.Fatalf("congWitness: -512 is a multiple of 512")
	}
}

func TestFMInfeasible(t *testing.T) {
	// x <= 4, -x <= -6 (x >= 6): infeasible.
	sys := []fmCon{
		{ts: []term{{v: 0, coef: 1}}, c: 4},
		{ts: []term{{v: 0, coef: -1}}, c: -6},
	}
	if !fmInfeasible(sys, 1) {
		t.Fatalf("disjoint bounds should be infeasible")
	}
	// x <= 4, x >= 1: feasible.
	sys = []fmCon{
		{ts: []term{{v: 0, coef: 1}}, c: 4},
		{ts: []term{{v: 0, coef: -1}}, c: -1},
	}
	if fmInfeasible(sys, 1) {
		t.Fatalf("satisfiable bounds reported infeasible")
	}
	// Tree-reduction core: D = t1 - t2 - s in [-1, 1] (word-scaled),
	// t1 <= s-1, boxes t in [0,127], s in [0,64]: infeasible.
	sys = []fmCon{
		{ts: []term{{v: 0, coef: 1}, {v: 1, coef: -1}, {v: 2, coef: -1}}, c: 0},
		{ts: []term{{v: 0, coef: -1}, {v: 1, coef: 1}, {v: 2, coef: 1}}, c: 0},
		{ts: []term{{v: 0, coef: 1}, {v: 2, coef: -1}}, c: -1}, // t1 - s <= -1
		{ts: []term{{v: 0, coef: -1}}, c: 0},
		{ts: []term{{v: 1, coef: -1}}, c: 0},
		{ts: []term{{v: 2, coef: -1}}, c: 0},
	}
	if !fmInfeasible(sys, 3) {
		t.Fatalf("tree-reduction system should be infeasible")
	}
}
