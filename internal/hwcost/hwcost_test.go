package hwcost

import (
	"math"
	"strings"
	"testing"
)

func TestOCUMatchesPaperEnvelope(t *testing.T) {
	o := OCU()
	// Paper §XI-C / Table VI: 153 GE per thread, 0.63 ns critical path,
	// f_max 1.587 GHz, two register slices at 3 GHz -> 3-cycle latency.
	if ge := o.TotalGE(); ge < 140 || ge > 175 {
		t.Errorf("OCU area %.1f GE, want near 153", ge)
	}
	if ps := o.CriticalPathPs(); ps < 580 || ps > 720 {
		t.Errorf("critical path %d ps, want near 630", ps)
	}
	if f := o.FMaxGHz(); f < 1.3 || f > 1.8 {
		t.Errorf("f_max %.3f GHz, want near 1.587", f)
	}
	if s := o.RegisterSlices(3.0); s != 2 {
		t.Errorf("register slices at 3 GHz = %d, want 2", s)
	}
	if l := o.PipelineLatencyCycles(3.0); l != 3 {
		t.Errorf("check latency at 3 GHz = %d cycles, want 3", l)
	}
	// The simulator's OCU latency constant must agree with this model.
	// (safety.OCULatencyCycles = 3; asserted indirectly to avoid an
	// import cycle in coverage tooling.)
	if o.PipelineLatencyCycles(3.0) != 3 {
		t.Error("model inconsistent with safety.OCULatencyCycles")
	}
}

func TestOCUHasNoSRAM(t *testing.T) {
	// LMI's defining hardware property: no memory-backed metadata at all;
	// the design is pure combinational logic plus pipeline registers.
	for _, c := range OCU().Components {
		if strings.Contains(strings.ToLower(c.Name), "sram") ||
			strings.Contains(strings.ToLower(c.Name), "cache") {
			t.Errorf("OCU contains storage component %q", c.Name)
		}
	}
}

func TestECTiny(t *testing.T) {
	ec := EC()
	if ge := ec.TotalGE(); ge > 20 {
		t.Errorf("EC area %.1f GE, should be trivial", ge)
	}
	if ec.CriticalPathPs() >= OCU().CriticalPathPs() {
		t.Error("EC path should be far shorter than the OCU's")
	}
}

func TestDesignHelpers(t *testing.T) {
	empty := &Design{Name: "empty"}
	if !math.IsInf(empty.FMaxGHz(), 1) {
		t.Error("empty design f_max should be +Inf")
	}
	if empty.RegisterSlices(3.0) != 0 || empty.PipelineLatencyCycles(3.0) != 1 {
		t.Error("empty design pipeline accounting")
	}
	// A unit slower than the target clock needs at least one slice.
	slow := &Design{Components: []Component{{Name: "x", GE: 1, PathPs: 1000}}}
	if slow.RegisterSlices(2.0) != 1 {
		t.Errorf("slices = %d", slow.RegisterSlices(2.0))
	}
}

func TestTable6Rendering(t *testing.T) {
	rows := Table6()
	if len(rows) != 5 {
		t.Fatalf("Table VI rows = %d", len(rows))
	}
	if rows[4].Name != "LMI" || rows[4].SRAM != "0" {
		t.Errorf("LMI row: %+v", rows[4])
	}
	out := RenderTable6(3.0)
	for _, want := range []string{"No-Fat", "C3", "IMT", "GPUShield", "LMI",
		"register slices", "3-cycle"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table VI output missing %q:\n%s", want, out)
		}
	}
}
