// Package hwcost is the hardware-cost substrate of the reproduction: a
// structural gate-equivalent and critical-path model of LMI's Overflow
// Checking Unit, standing in for the paper's Cadence synthesis with the
// FreePDK45 library (§XI-C, Table VI).
//
// The OCU datapath is sized for the two-32-bit-physical-register layout
// of Fig. 6: the extent field and unmodifiable bits live in the pointer's
// high word, so overflow detection needs a full XOR-compare of the high
// word's address bits plus a thermometer-masked compare of the low word
// (buffers up to 4 GiB have their modifiable boundary inside the low
// word; larger size classes disable low-word checking and extend the
// thermometer into the high word, reusing the same gates).
package hwcost

import (
	"fmt"
	"math"

	"lmi/internal/stats"
)

// Gate-equivalent weights (NAND2 = 1 GE) and FreePDK45-class propagation
// delays in picoseconds, typical corner.
const (
	geNAND2 = 1.0
	geAND2  = 1.25
	geOR2   = 1.25
	geXOR2  = 1.5
	geMUX2  = 1.75
	geINV   = 0.5

	psNAND2 = 38
	psAND2  = 45
	psOR2   = 45
	psXOR2  = 55
	psMUX2  = 48

	// fJPerGE is the mean switching energy per gate equivalent per
	// evaluation: FreePDK45-class dynamic energy at the typical corner
	// with the activity factor folded in. It prices what a statically
	// elided check saves — the EC evaluation that never happens.
	fJPerGE = 0.8
)

// Component is one block of a hardware design.
type Component struct {
	// Name describes the block.
	Name string
	// GE is the block's area in gate equivalents.
	GE float64
	// PathPs is the block's contribution to the critical path in
	// picoseconds (zero if off the critical path).
	PathPs int
}

// Design is a composed hardware unit.
type Design struct {
	Name       string
	Components []Component
}

// TotalGE sums the design's area.
func (d *Design) TotalGE() float64 {
	var t float64
	for _, c := range d.Components {
		t += c.GE
	}
	return t
}

// CriticalPathPs sums the critical-path contributions.
func (d *Design) CriticalPathPs() int {
	t := 0
	for _, c := range d.Components {
		t += c.PathPs
	}
	return t
}

// EnergyPerOpFJ estimates the dynamic energy of one evaluation of the
// design in femtojoules (area x per-GE switching energy).
func (d *Design) EnergyPerOpFJ() float64 {
	return d.TotalGE() * fJPerGE
}

// FMaxGHz is the combinational unit's maximum clock frequency.
func (d *Design) FMaxGHz() float64 {
	ps := d.CriticalPathPs()
	if ps == 0 {
		return math.Inf(1)
	}
	return 1000.0 / float64(ps)
}

// RegisterSlices returns the number of pipeline register slices needed to
// close timing at the target frequency (stages - 1).
func (d *Design) RegisterSlices(targetGHz float64) int {
	periodPs := 1000.0 / targetGHz
	stages := int(math.Ceil(float64(d.CriticalPathPs()) / periodPs))
	if stages < 1 {
		stages = 1
	}
	return stages - 1
}

// PipelineLatencyCycles is the check latency in cycles at the target
// frequency once the register slices are inserted: paper §XI-C — "we
// incorporate two register slices into LMI's logic ... This modification
// introduces a three-cycle delay".
func (d *Design) PipelineLatencyCycles(targetGHz float64) int {
	return d.RegisterSlices(targetGHz) + 1
}

// Datapath widths of the OCU (Fig. 6 pointer layout over two 32-bit
// physical registers).
const (
	extentBits   = 5
	highAddrBits = 32 - extentBits // address bits in the high word
	lowMaskBits  = 32 - 8          // thermometer bits for classes < 4 GiB (min class 256 B)
)

// OCU builds the per-thread Overflow Checking Unit: the operand selector
// driven by the S hint, the mask generator keyed by the extent, the
// XOR/AND change detector, the zero comparator, and the extent-clear
// logic (§VII, Fig. 10).
//
// Because a 64-bit pointer occupies two 32-bit physical registers
// (Fig. 6), the checker is a single 32-bit slice used for both words:
// the slice first compares the low word under the thermometer mask, then
// the high word under the extent/UM mask, accumulating into the same
// zero comparator. Serialising the two passes keeps the per-thread area
// at one slice at the cost of a longer combinational path — which is why
// the unit needs register slices at GPU clock rates (§XI-C).
func OCU() *Design {
	const sliceBits = 32
	orDepth := int(math.Ceil(math.Log2(float64(sliceBits))))
	return &Design{
		Name: "LMI OCU",
		Components: []Component{
			// The S hint selects which ALU input register feeds the
			// checker; only the extent/UM fields need muxing — the
			// word data reuses the ALU's operand bus.
			{Name: "operand select mux", GE: float64(extentBits+2) * geMUX2, PathPs: psMUX2},
			// 5-bit extent -> 24-bit thermometer mask (log-depth NAND
			// decode).
			{Name: "mask generator (5->24 thermometer)", GE: float64(lowMaskBits) * geNAND2, PathPs: 3 * psAND2},
			// 32-bit XOR change-detector slice (used for both words).
			{Name: "32-bit XOR slice", GE: sliceBits * geXOR2, PathPs: psXOR2},
			// 32-bit mask AND slice.
			{Name: "32-bit mask AND slice", GE: sliceBits * geNAND2, PathPs: psNAND2},
			// Zero comparator: 32-input NOR/NAND tree with an
			// accumulation latch input for the second pass.
			{Name: "zero comparator (NOR tree)", GE: float64(sliceBits - 1), PathPs: orDepth * psNAND2},
			// Second pass through the slice (high word): XOR + AND +
			// final accumulate are on the critical path again.
			{Name: "second-pass path (high word)", GE: 0, PathPs: psXOR2 + 2*psNAND2},
			// Extent-zero detector for dead-pointer propagation.
			{Name: "extent-zero detect", GE: 2 * geNAND2, PathPs: psNAND2},
			// Extent clear: 5 AND gates gated by the overflow signal.
			{Name: "extent clear logic", GE: float64(extentBits)*geAND2 + 2*geINV, PathPs: psAND2},
		},
	}
}

// EC builds the per-LSU-lane Extent Checker: a 5-input NOR on the extent
// field plus fault latching.
func EC() *Design {
	return &Design{
		Name: "LMI EC",
		Components: []Component{
			{Name: "extent-zero detect", GE: 2 * geNAND2, PathPs: psNAND2},
			{Name: "fault latch + qualify", GE: 6 * geNAND2, PathPs: psNAND2},
		},
	}
}

// Table6Row is one mechanism's hardware-cost entry.
type Table6Row struct {
	Name string
	// Target describes the per-unit scope (T: thread, W: warp, SM, C:
	// core).
	Logic    string
	GE       string
	SRAM     string
	Verified string
	// Source marks whether the numbers come from this model or from the
	// cited paper.
	Source string
}

// Table6 reproduces Table VI: LMI's numbers from this structural model,
// the other schemes' from their papers (as the paper itself does: "based
// on their descriptions").
func Table6() []Table6Row {
	ocu := OCU()
	return []Table6Row{
		{Name: "No-Fat", Logic: "Bounds checking, base computing",
			GE: "59,476/C", SRAM: "1024/C", Verified: "LSU, NoC, cache", Source: "ISCA'21 paper"},
		{Name: "C3", Logic: "Keystream generator",
			GE: "27,280/C", SRAM: "0", Verified: "LSU, NoC, cache", Source: "MICRO'21 paper (Ascon impl.)"},
		{Name: "IMT", Logic: "Tag logic in ECC",
			GE: "900/SM", SRAM: "0", Verified: "Memctrl, ECC, cache", Source: "ISCA'23 paper"},
		{Name: "GPUShield", Logic: "2-level cache, comparator",
			GE: "1000/W", SRAM: "910/W", Verified: "LSU, NoC, cache", Source: "ISCA'22 paper"},
		{Name: "LMI", Logic: "mask gen, XOR/AND, comparator, clear",
			GE:   fmt.Sprintf("%.0f/T", ocu.TotalGE()),
			SRAM: "0", Verified: "ALU (INT only), LSU", Source: "this model"},
	}
}

// RenderTable6 renders Table VI plus the §XI-C synthesis summary.
func RenderTable6(targetGHz float64) string {
	t := stats.NewTable("mechanism", "additional logic", "gates (GE)", "SRAM (B)", "to be verified", "source")
	for _, r := range Table6() {
		t.AddRow(r.Name, r.Logic, r.GE, r.SRAM, r.Verified, r.Source)
	}
	ocu := OCU()
	return t.String() + fmt.Sprintf(
		"\nOCU synthesis: %.0f GE/thread, critical path %d ps (f_max %.3f GHz);"+
			" at %.1f GHz: %d register slices -> %d-cycle check latency\n",
		ocu.TotalGE(), ocu.CriticalPathPs(), ocu.FMaxGHz(),
		targetGHz, ocu.RegisterSlices(targetGHz), ocu.PipelineLatencyCycles(targetGHz))
}
