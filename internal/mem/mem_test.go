package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAddrSpaceReadWrite(t *testing.T) {
	m := NewAddrSpace()
	if m.Read(0x1000, 8) != 0 {
		t.Error("unmapped memory must read zero")
	}
	m.Write(0x1000, 0xdeadbeefcafe, 8)
	if got := m.Read(0x1000, 8); got != 0xdeadbeefcafe {
		t.Errorf("read back %#x", got)
	}
	if got := m.Read(0x1000, 4); got != 0xbeefcafe {
		t.Errorf("4-byte read %#x", got)
	}
	if got := m.Read(0x1004, 2); got != 0xdead {
		t.Errorf("2-byte read %#x", got)
	}
	m.Write(0x1002, 0xff, 1)
	if got := m.Read(0x1002, 1); got != 0xff {
		t.Errorf("1-byte read %#x", got)
	}
}

func TestAddrSpaceCrossPage(t *testing.T) {
	m := NewAddrSpace()
	addr := uint64(pageSize - 3) // straddles page boundary
	m.Write(addr, 0x1122334455667788, 8)
	if got := m.Read(addr, 8); got != 0x1122334455667788 {
		t.Errorf("cross-page read %#x", got)
	}
	if m.Pages() != 2 {
		t.Errorf("pages = %d, want 2", m.Pages())
	}
	data := []byte("hello, gpu memory world, crossing pages")
	m.WriteBytes(2*pageSize-10, data)
	if got := m.ReadBytes(2*pageSize-10, len(data)); !bytes.Equal(got, data) {
		t.Errorf("ReadBytes = %q", got)
	}
}

// Property: write-then-read returns the written value for all sizes and
// addresses (value truncated to the access size).
func TestPropertyAddrSpaceRoundTrip(t *testing.T) {
	m := NewAddrSpace()
	f := func(addr uint64, val uint64, szSel uint8) bool {
		size := []int{1, 2, 4, 8}[szSel%4]
		addr %= 1 << 30
		m.Write(addr, val, size)
		mask := ^uint64(0)
		if size < 8 {
			mask = (uint64(1) << (8 * size)) - 1
		}
		return m.Read(addr, size) == val&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCacheBasic(t *testing.T) {
	c, err := NewCache("l1", 1024, 2, 64, 30)
	if err != nil {
		t.Fatal(err)
	}
	if c.LineSize() != 64 {
		t.Error("line size")
	}
	if c.Access(0x100) {
		t.Error("cold access hit")
	}
	if !c.Access(0x100) || !c.Access(0x13f) {
		t.Error("warm same-line access missed")
	}
	if c.Access(0x140) {
		t.Error("adjacent line hit when cold")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Hits != 2 || s.Misses != 2 {
		t.Errorf("stats %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Errorf("hit rate %v", s.HitRate())
	}
	if !c.Probe(0x100) || c.Probe(0x100000) {
		t.Error("probe wrong")
	}
	c.Reset()
	if c.Stats().Accesses != 0 || c.Probe(0x100) {
		t.Error("reset incomplete")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 1 set of 64-byte lines: size = 128.
	c, err := NewCache("tiny", 128, 2, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0x000) // A
	c.Access(0x040) // B
	c.Access(0x000) // A again: A is MRU
	c.Access(0x080) // C: evicts B (LRU)
	if !c.Probe(0x000) {
		t.Error("A evicted, expected B")
	}
	if c.Probe(0x040) {
		t.Error("B survived, expected eviction")
	}
	if !c.Probe(0x080) {
		t.Error("C not resident")
	}
}

func TestCacheConfigErrors(t *testing.T) {
	if _, err := NewCache("x", 100, 2, 48, 1); err == nil {
		t.Error("non-power-of-two line accepted")
	}
	if _, err := NewCache("x", 100, 0, 64, 1); err == nil {
		t.Error("zero associativity accepted")
	}
	if _, err := NewCache("x", 100, 2, 64, 1); err == nil {
		t.Error("indivisible size accepted")
	}
}

func TestDRAMQueueing(t *testing.T) {
	d := NewDRAM(300, 32)
	// First 128-byte fill: 4 cycles occupancy + 300 latency.
	if got := d.Access(0, 128); got != 304 {
		t.Errorf("first access latency %d", got)
	}
	// Second fill issued same cycle queues behind the first.
	if got := d.Access(0, 128); got != 308 {
		t.Errorf("queued access latency %d", got)
	}
	// An access issued after the device drained sees no queueing.
	if got := d.Access(100, 128); got != 304 {
		t.Errorf("drained access latency %d", got)
	}
	s := d.Stats()
	if s.Accesses != 3 || s.BusyCycles != 12 {
		t.Errorf("stats %+v", s)
	}
	d.Reset()
	if d.Stats().Accesses != 0 {
		t.Error("reset incomplete")
	}
	// Zero bandwidth is clamped.
	d2 := NewDRAM(10, 0)
	if got := d2.Access(0, 16); got < 10 {
		t.Errorf("clamped bandwidth latency %d", got)
	}
}

// Property: cache contains at most size/lineSize distinct lines, and a
// just-accessed line always probes resident.
func TestPropertyCacheResidency(t *testing.T) {
	c, err := NewCache("p", 4096, 4, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			c.Access(uint64(a))
			if !c.Probe(uint64(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
