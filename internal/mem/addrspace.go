// Package mem provides the memory substrate of the GPU simulator: sparse
// byte-addressable address spaces for functional state, a set-associative
// cache timing model, and a DRAM latency/bandwidth model.
//
// The heterogeneous GPU memory system (paper §II-A) is assembled from
// these pieces by the simulator: one global space shared by all SMs and
// backed by the L1/L2/DRAM hierarchy, one shared-memory space per resident
// block with L1-class latency, per-thread local memory that lives in DRAM
// but is translated to distinct backing locations, and a read-only
// constant bank.
package mem

import "encoding/binary"

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// AddrSpace is a sparse, byte-addressable, little-endian memory. Unmapped
// bytes read as zero; pages are allocated on first write. It is the
// functional half of the memory model: timing is handled separately by
// Cache and DRAM.
type AddrSpace struct {
	pages map[uint64]*[pageSize]byte
}

// NewAddrSpace returns an empty address space.
func NewAddrSpace() *AddrSpace {
	return &AddrSpace{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *AddrSpace) page(addr uint64, alloc bool) *[pageSize]byte {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && alloc {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// ReadBytes copies size bytes at addr into dst semantics, returning them
// as a fresh slice.
func (m *AddrSpace) ReadBytes(addr uint64, size int) []byte {
	out := make([]byte, size)
	for i := 0; i < size; {
		p := m.page(addr+uint64(i), false)
		off := int((addr + uint64(i)) & pageMask)
		n := pageSize - off
		if n > size-i {
			n = size - i
		}
		if p != nil {
			copy(out[i:i+n], p[off:off+n])
		}
		i += n
	}
	return out
}

// WriteBytes stores src at addr.
func (m *AddrSpace) WriteBytes(addr uint64, src []byte) {
	for i := 0; i < len(src); {
		p := m.page(addr+uint64(i), true)
		off := int((addr + uint64(i)) & pageMask)
		n := pageSize - off
		if n > len(src)-i {
			n = len(src) - i
		}
		copy(p[off:off+n], src[i:i+n])
		i += n
	}
}

// Read loads a size-byte little-endian unsigned value (size 1, 2, 4 or 8).
func (m *AddrSpace) Read(addr uint64, size int) uint64 {
	// Fast path: access within one page.
	p := m.page(addr, false)
	off := int(addr & pageMask)
	if p != nil && off+size <= pageSize {
		switch size {
		case 1:
			return uint64(p[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		}
	}
	var buf [8]byte
	copy(buf[:size], m.ReadBytes(addr, size))
	return binary.LittleEndian.Uint64(buf[:])
}

// Write stores the low size bytes of val at addr little-endian.
func (m *AddrSpace) Write(addr uint64, val uint64, size int) {
	p := m.page(addr, true)
	off := int(addr & pageMask)
	if off+size <= pageSize {
		switch size {
		case 1:
			p[off] = byte(val)
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(val))
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(val))
			return
		case 8:
			binary.LittleEndian.PutUint64(p[off:], val)
			return
		}
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], val)
	m.WriteBytes(addr, buf[:size])
}

// Pages returns the number of mapped pages (resident set, used for RSS
// accounting in fragmentation experiments).
func (m *AddrSpace) Pages() int { return len(m.pages) }

// PageWindowSize is the page granularity of PageWindow results.
const PageWindowSize = pageSize

// PageWindow returns the mapped backing bytes from addr to the end of
// its page, or nil when the page is unallocated (unmapped bytes read as
// zero; pass alloc to materialise the page for writing). It lets a
// tight caller — the fast-path execution tier's load/store loop — batch
// the per-access page-map lookup across the many lanes of a warp that
// touch the same page: accesses that fit inside the window go straight
// to the returned slice with Read/Write's little-endian layout.
func (m *AddrSpace) PageWindow(addr uint64, alloc bool) []byte {
	p := m.page(addr, alloc)
	if p == nil {
		return nil
	}
	return p[addr&pageMask:]
}
