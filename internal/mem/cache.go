package mem

import "fmt"

// Cache is a set-associative cache timing model with LRU replacement. It
// tracks tags only — data lives in the functional AddrSpace — so an access
// answers "hit or miss" and the caller composes latencies.
type Cache struct {
	name     string
	lineSize uint64
	numSets  uint64
	assoc    int

	// Latency is the hit latency in cycles.
	Latency uint64

	sets []cacheSet
	tick uint64

	stats CacheStats
}

type cacheSet struct {
	lines []cacheLine
}

type cacheLine struct {
	tag     uint64
	valid   bool
	lastUse uint64
}

// CacheStats counts cache activity.
type CacheStats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// HitRate returns the fraction of accesses that hit.
func (s CacheStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// NewCache builds a cache of the given total size, associativity, line
// size, and hit latency. Size must be divisible by assoc*lineSize.
func NewCache(name string, size uint64, assoc int, lineSize uint64, latency uint64) (*Cache, error) {
	if lineSize == 0 || lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("mem: %s: line size %d not a power of two", name, lineSize)
	}
	if assoc <= 0 {
		return nil, fmt.Errorf("mem: %s: associativity %d", name, assoc)
	}
	numSets := size / (uint64(assoc) * lineSize)
	if numSets == 0 || size%(uint64(assoc)*lineSize) != 0 {
		return nil, fmt.Errorf("mem: %s: size %d not divisible into %d-way sets of %d-byte lines",
			name, size, assoc, lineSize)
	}
	c := &Cache{
		name:     name,
		lineSize: lineSize,
		numSets:  numSets,
		assoc:    assoc,
		Latency:  latency,
		sets:     make([]cacheSet, numSets),
	}
	for i := range c.sets {
		c.sets[i].lines = make([]cacheLine, assoc)
	}
	return c, nil
}

// LineSize returns the cache line size in bytes.
func (c *Cache) LineSize() uint64 { return c.lineSize }

// setIndex hashes a line address onto a set. GPUs (and modern CPUs) hash
// set indices so that power-of-two strides — which LMI's size-aligned
// buffers naturally produce — do not concentrate on a subset of sets.
func (c *Cache) setIndex(lineAddr uint64) uint64 {
	h := lineAddr ^ lineAddr>>7 ^ lineAddr>>13 ^ lineAddr>>19
	return h % c.numSets
}

// Access looks up the line containing addr, allocating it on miss, and
// reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.tick++
	c.stats.Accesses++
	lineAddr := addr / c.lineSize
	set := &c.sets[c.setIndex(lineAddr)]
	tag := lineAddr
	victim := 0
	for i := range set.lines {
		l := &set.lines[i]
		if l.valid && l.tag == tag {
			l.lastUse = c.tick
			c.stats.Hits++
			return true
		}
		if !l.valid {
			victim = i
		} else if set.lines[victim].valid && l.lastUse < set.lines[victim].lastUse {
			victim = i
		}
	}
	c.stats.Misses++
	set.lines[victim] = cacheLine{tag: tag, valid: true, lastUse: c.tick}
	return false
}

// Probe reports whether addr's line is present without touching LRU state
// or statistics.
func (c *Cache) Probe(addr uint64) bool {
	lineAddr := addr / c.lineSize
	set := &c.sets[c.setIndex(lineAddr)]
	tag := lineAddr
	for i := range set.lines {
		if set.lines[i].valid && set.lines[i].tag == tag {
			return true
		}
	}
	return false
}

// Stats returns a snapshot of cache statistics.
func (c *Cache) Stats() CacheStats { return c.stats }

// Reset invalidates all lines and zeroes statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i].lines {
			c.sets[i].lines[j] = cacheLine{}
		}
	}
	c.stats = CacheStats{}
	c.tick = 0
}

// DRAM models main-memory timing: a fixed access latency plus a
// bandwidth limiter. Each line fill occupies the device for
// lineSize/BytesPerCycle cycles; requests arriving while the device is
// busy queue behind it, so bandwidth-bound phases see growing effective
// latency, reproducing the roofline behaviour the paper leans on
// (§IV-B1).
type DRAM struct {
	// Latency is the unloaded access latency in cycles.
	Latency uint64
	// BytesPerCycle is the sustained fill bandwidth.
	BytesPerCycle uint64

	nextFree uint64
	stats    DRAMStats
}

// DRAMStats counts DRAM activity.
type DRAMStats struct {
	Accesses   uint64
	BusyCycles uint64
}

// NewDRAM builds a DRAM model.
func NewDRAM(latency, bytesPerCycle uint64) *DRAM {
	if bytesPerCycle == 0 {
		bytesPerCycle = 1
	}
	return &DRAM{Latency: latency, BytesPerCycle: bytesPerCycle}
}

// Access returns the completion latency (relative to now) of a size-byte
// fill issued at cycle now, accounting for queueing behind earlier fills.
func (d *DRAM) Access(now uint64, size uint64) uint64 {
	d.stats.Accesses++
	occupancy := size / d.BytesPerCycle
	if occupancy == 0 {
		occupancy = 1
	}
	start := now
	if d.nextFree > start {
		start = d.nextFree
	}
	d.nextFree = start + occupancy
	d.stats.BusyCycles += occupancy
	return (start - now) + occupancy + d.Latency
}

// Stats returns a snapshot of DRAM statistics.
func (d *DRAM) Stats() DRAMStats { return d.stats }

// Reset clears timing state and statistics.
func (d *DRAM) Reset() { d.nextFree = 0; d.stats = DRAMStats{} }
