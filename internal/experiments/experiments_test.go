package experiments

import (
	"math"
	"strings"
	"testing"

	"lmi/internal/sectest"
	"lmi/internal/sim"
	"lmi/internal/workloads"
)

// TestHaltedNoFaultGuard is the fault-guard regression test: a kernel
// that halts with an *empty* fault slice must surface a descriptive
// error. The seed harness indexed st.Faults[0] unconditionally on this
// path and panicked.
func TestHaltedNoFaultGuard(t *testing.T) {
	err := cleanStats("bench", workloads.VariantLMI, &sim.KernelStats{Halted: true})
	if err == nil || !strings.Contains(err.Error(), "halted with no recorded fault") {
		t.Errorf("halted-no-fault err = %v", err)
	}
	if !strings.Contains(err.Error(), "bench/lmi") {
		t.Errorf("error does not name the run: %v", err)
	}
	err = cleanStats("bench", workloads.VariantLMI, &sim.KernelStats{
		Halted: true,
		Faults: []sim.FaultRecord{{SM: 1, Warp: 2, Lane: 3, PC: 4}},
	})
	if err == nil || !strings.Contains(err.Error(), "unexpected fault") {
		t.Errorf("faulting err = %v", err)
	}
	// Faults recorded without a halt (HaltOnFault=false) are still an
	// experiment failure.
	err = cleanStats("bench", workloads.VariantBase, &sim.KernelStats{
		Faults: []sim.FaultRecord{{}},
	})
	if err == nil {
		t.Error("unhalted faults accepted")
	}
	if err := cleanStats("bench", workloads.VariantBase, &sim.KernelStats{}); err != nil {
		t.Errorf("clean stats rejected: %v", err)
	}
}

// TestUndefinedGeomeanRendersNA: summary rows must print "n/a" for an
// undefined geomean instead of presenting NaN or 0 as a slowdown ratio.
func TestUndefinedGeomeanRendersNA(t *testing.T) {
	r12 := &Fig12Result{
		Rows:      []Fig12Row{{Name: "x", Suite: "s", Baseline: 1, Baggy: 1, GPUShield: 1, LMI: 1}},
		BaggyMean: math.NaN(), GPUShieldMean: math.NaN(), LMIMean: math.NaN(),
	}
	if !strings.Contains(r12.Table(), "n/a") {
		t.Errorf("Fig12 table renders NaN geomean:\n%s", r12.Table())
	}
	if strings.Contains(r12.Table(), "NaN") {
		t.Errorf("Fig12 table leaks NaN:\n%s", r12.Table())
	}
	r13 := &Fig13Result{LMIDBIMean: math.NaN(), MemcheckMean: math.NaN()}
	if !strings.Contains(r13.Table(), "n/a") || strings.Contains(r13.Table(), "NaN") {
		t.Errorf("Fig13 table:\n%s", r13.Table())
	}
	if !math.IsNaN(checkedMean(nil)) || !math.IsNaN(checkedMean([]float64{1, 0})) {
		t.Error("checkedMean should be NaN for empty / non-positive input")
	}
	if got := checkedMean([]float64{2, 8}); got != 4 {
		t.Errorf("checkedMean([2 8]) = %v, want 4", got)
	}
}

// TestFig01Deterministic: the parallel sweep renders byte-identically to
// the sequential one (the tentpole guarantee at the experiment level).
func TestFig01Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("double sweep in -short mode")
	}
	cfg := sim.ScaledConfig(2)
	seq, err := Fig01Jobs(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig01Jobs(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Table() != par.Table() {
		t.Errorf("parallel Fig. 1 differs from sequential:\n--- seq\n%s\n--- par\n%s",
			seq.Table(), par.Table())
	}
	if seq.Report == nil || par.Report == nil || par.Report.Workers != 4 {
		t.Error("sweep reports missing or mis-sized")
	}
}

// TestFig12Shape asserts the Fig. 12 reproduction bands: LMI near-zero,
// GPUShield low with needle/LSTM as its largest overheads, Baggy high
// with its peak on the compute-bound gaussian.
func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 12 sweep in -short mode")
	}
	res, err := Fig12(SimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 28 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Ordering: LMI < GPUShield < Baggy on geomean.
	if !(res.LMIMean < res.GPUShieldMean && res.GPUShieldMean < res.BaggyMean) {
		t.Errorf("geomean ordering violated: lmi=%.4f gpushield=%.4f baggy=%.4f",
			res.LMIMean, res.GPUShieldMean, res.BaggyMean)
	}
	// LMI: negligible overhead (paper: 0.22%; we allow the simulation
	// noise band).
	if res.LMIMean > 1.02 {
		t.Errorf("LMI geomean %.4f, want < 1.02", res.LMIMean)
	}
	// GPUShield: low average, clear outliers on needle and LSTM.
	if res.GPUShieldMean > 1.05 {
		t.Errorf("GPUShield geomean %.4f, want < 1.05", res.GPUShieldMean)
	}
	byName := map[string]Fig12Row{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	if byName["needle"].GPUShield < 1.08 || byName["LSTM"].GPUShield < 1.15 {
		t.Errorf("GPUShield outliers too small: needle=%.3f LSTM=%.3f (paper: 1.425, 1.24)",
			byName["needle"].GPUShield, byName["LSTM"].GPUShield)
	}
	// Baggy: large overhead, peak on gaussian (paper: 87%% avg, 503%% peak).
	if res.BaggyMean < 1.4 || res.BaggyMean > 2.3 {
		t.Errorf("Baggy geomean %.4f, want in [1.4, 2.3]", res.BaggyMean)
	}
	if res.BaggyPeak < 3.5 {
		t.Errorf("Baggy peak %.2f, want > 3.5 (compute-bound)", res.BaggyPeak)
	}
	if byName["gaussian"].Baggy != res.BaggyPeak {
		t.Errorf("Baggy peak should be gaussian, got %.2f there", byName["gaussian"].Baggy)
	}
	if !strings.Contains(res.Table(), "GEOMEAN") {
		t.Error("table rendering")
	}
}

// TestFig13SubsetShape asserts the DBI comparison on a representative
// subset (the bench harness runs all 24): both tools are tens-of-times
// slowdowns, LMI-DBI exceeds memcheck, and gaussian is memcheck's best
// relative case (its checks concentrate on non-memory instructions).
func TestFig13SubsetShape(t *testing.T) {
	if testing.Short() {
		t.Skip("DBI sweep in -short mode")
	}
	var subset []*workloads.Spec
	for _, name := range []string{"gaussian", "swin", "nn", "backprop"} {
		subset = append(subset, workloads.ByName(name))
	}
	res, err := Fig13For(subset, SimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.LMIDBIMean < 20 {
		t.Errorf("LMI-DBI geomean %.1f, want tens of times", res.LMIDBIMean)
	}
	if res.MemcheckMean < 5 {
		t.Errorf("memcheck geomean %.1f, want > 5", res.MemcheckMean)
	}
	if res.LMIDBIMean <= res.MemcheckMean {
		t.Errorf("LMI-DBI (%.1f) should exceed memcheck (%.1f) on average",
			res.LMIDBIMean, res.MemcheckMean)
	}
	byName := map[string]Fig13Row{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	g, sw := byName["gaussian"], byName["swin"]
	// The crossover logic of §XI-B: gaussian's check/LDST ratio is far
	// higher than swin's, and the LMI-DBI:memcheck gap tracks it.
	if g.CheckLDSTRatio <= sw.CheckLDSTRatio {
		t.Errorf("check/LDST: gaussian %.1f should exceed swin %.1f",
			g.CheckLDSTRatio, sw.CheckLDSTRatio)
	}
	if g.LMIDBI/g.Memcheck <= sw.LMIDBI/sw.Memcheck {
		t.Errorf("gaussian should be memcheck's best relative case: %.1f vs %.1f",
			g.LMIDBI/g.Memcheck, sw.LMIDBI/sw.Memcheck)
	}
	if !strings.Contains(res.Table(), "GEOMEAN") {
		t.Error("table rendering")
	}
}

// TestFig01Shape asserts the Fig. 1 anchors: bert/decoding global-heavy,
// lud_cuda/needle >80% shared.
func TestFig01Shape(t *testing.T) {
	res, err := Fig01(SimConfig())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig01Row{}
	for _, r := range res.Rows {
		byName[r.Name] = r
		if r.Global+r.Shared+r.Local < 0.999 || r.Global+r.Shared+r.Local > 1.001 {
			t.Errorf("%s: shares do not sum to 1", r.Name)
		}
	}
	for _, n := range []string{"bert", "decoding"} {
		if byName[n].Global < 0.9 {
			t.Errorf("%s global share %.2f, want > 0.9", n, byName[n].Global)
		}
	}
	for _, n := range []string{"lud_cuda", "needle"} {
		if byName[n].Shared < 0.8 {
			t.Errorf("%s shared share %.2f, want > 0.8 (paper: over 80%%)", n, byName[n].Shared)
		}
	}
	for _, n := range []string{"particlefilter_float", "lavaMD"} {
		if byName[n].Local <= 0 {
			t.Errorf("%s local share should be nonzero", n)
		}
	}
	if !strings.Contains(res.Table(), "benchmark") {
		t.Error("table rendering")
	}
}

// TestFig04Shape asserts the Fig. 4 anchors.
func TestFig04Shape(t *testing.T) {
	res, err := Fig04()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig04Row{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	if byName["hotspot"].Overhead > 0.01 || byName["srad_v1"].Overhead > 0.01 {
		t.Error("hotspot/srad should have negligible fragmentation")
	}
	if math.Abs(byName["backprop"].Overhead-0.859) > 0.05 {
		t.Errorf("backprop overhead %.3f, paper 0.859", byName["backprop"].Overhead)
	}
	if math.Abs(byName["needle"].Overhead-0.929) > 0.05 {
		t.Errorf("needle overhead %.3f, paper 0.929", byName["needle"].Overhead)
	}
	if math.Abs(res.Geomean-0.1873) > 0.05 {
		t.Errorf("geomean %.4f, paper 0.1873", res.Geomean)
	}
	if !strings.Contains(res.Table(), "GEOMEAN") {
		t.Error("table rendering")
	}
}

// TestTable2Assembles renders Table II from a live Table III run
// (without the slow Fig. 12 sweep).
func TestTable2Assembles(t *testing.T) {
	t3, err := sectest.RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	rows := Table2(nil, t3)
	if len(rows) != 10 {
		t.Fatalf("Table II rows = %d, want 10", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Name != "LMI" || last.MetadataAccess != "No" {
		t.Errorf("LMI row: %+v", last)
	}
	if last.Heap != "full" || last.Shared != "full" {
		t.Errorf("LMI coverage cells: %+v", last)
	}
	if rows[4].Name != "GMOD" || rows[4].Global != "partial(1/2)" {
		t.Errorf("GMOD row: %+v", rows[4])
	}
	out, err := RenderTable2(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"LMI", "GPUShield", "cuCatch", "Pointer Aligning"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}
