package experiments

import (
	"testing"
)

// TestElideExperiment is the elision acceptance gate: the sweep runs
// clean, a majority of the suite elides checks both statically and
// dynamically, elision never slows a benchmark down meaningfully, and
// the rendered table is byte-identical across worker-pool sizes.
func TestElideExperiment(t *testing.T) {
	cfg := SimConfig()
	res, err := ElideJobs(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	elidedDyn, elidedStatic := 0, 0
	for _, row := range res.Rows {
		if row.StaticElided > 0 {
			elidedStatic++
		}
		if row.ECElided > 0 {
			elidedDyn++
		}
		if row.ECElided > 0 && row.ECEnergySavedNJ <= 0 {
			t.Errorf("%s: %d elided checks priced at zero energy", row.Name, row.ECElided)
		}
		// Skipping a check can only remove work; allow a small scheduling
		// wobble but no real slowdown.
		if row.CycleDelta > 1.01 {
			t.Errorf("%s: elision slowed the run down: delta %.4f", row.Name, row.CycleDelta)
		}
	}
	if 2*elidedStatic < len(res.Rows) || 2*elidedDyn < len(res.Rows) {
		t.Errorf("elision reached too few benchmarks: static %d, dynamic %d of %d",
			elidedStatic, elidedDyn, len(res.Rows))
	}
	if res.ElidedFracMean <= 0 {
		t.Errorf("mean elided fraction %.4f, want > 0", res.ElidedFracMean)
	}

	par, err := ElideJobs(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table() != par.Table() {
		t.Errorf("elide table differs between 1 and 4 workers:\n--- 1 ---\n%s\n--- 4 ---\n%s",
			res.Table(), par.Table())
	}
}
