package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"lmi/internal/fastsim"
	"lmi/internal/hwcost"
	"lmi/internal/runner"
	"lmi/internal/sim"
	"lmi/internal/stats"
	"lmi/internal/workloads"
)

// PevalRow is one benchmark of the contract-specialization sweep: the
// general elided program and its contract-specialized residual run
// under identical launches, with the cycle and extent-check deltas the
// specialization buys priced against the hardware-cost model.
type PevalRow struct {
	Name  string `json:"name"`
	Suite string `json:"suite"`
	// Shape is the concrete contract shape the residual is valid under
	// (the serving cache key component).
	Shape string `json:"shape"`
	// OrigInstrs/ResidualInstrs are the static program lengths;
	// Transforms is the certificate log length.
	OrigInstrs     int `json:"orig_instrs"`
	ResidualInstrs int `json:"residual_instrs"`
	Transforms     int `json:"transforms"`
	// GeneralCycles/SpecCycles are the simulated launch lengths.
	GeneralCycles uint64 `json:"general_cycles"`
	SpecCycles    uint64 `json:"spec_cycles"`
	// GeneralElided/SpecElided are the per-launch elided-lane-check
	// counters; ChecksAvoided is their difference — the extent checks
	// the concrete contract proves away beyond what the general
	// contract already did.
	GeneralElided uint64 `json:"general_elided"`
	SpecElided    uint64 `json:"spec_elided"`
	ChecksAvoided uint64 `json:"checks_avoided"`
	// EnergySavedNJ prices the avoided checks at the EC's modeled
	// per-evaluation switching energy.
	EnergySavedNJ float64 `json:"energy_saved_nj"`
}

// PevalTotals aggregates the sweep.
type PevalTotals struct {
	GeneralCycles uint64  `json:"general_cycles"`
	SpecCycles    uint64  `json:"spec_cycles"`
	CyclesSaved   uint64  `json:"cycles_saved"`
	ChecksAvoided uint64  `json:"checks_avoided"`
	EnergySavedNJ float64 `json:"energy_saved_nj"`
}

// PevalResult is the full contract-specialization sweep. Its JSON form
// carries no wall-clock data: for a given tier and config it is
// byte-identical across runs and worker counts.
type PevalResult struct {
	Sweep string `json:"sweep"`
	Tier  string `json:"tier"`
	// ECEnergyPerOpFJ is the modeled per-evaluation extent-checker
	// energy the avoided checks are priced at.
	ECEnergyPerOpFJ float64     `json:"ec_energy_per_op_fj"`
	Rows            []PevalRow  `json:"rows"`
	Totals          PevalTotals `json:"totals"`
}

// Fig12PevalJobsTier runs the Fig. 12-style specialization sweep on
// the given tier: every workload's general elided program and its
// contract-specialized residual execute under the same launch, and the
// sweep cross-checks the functional invariants the specializer
// certifies (same fault count, same halt state, same total lane-access
// volume) while measuring what the residual saves. A corpus on which
// specialization saves neither cycles nor checks is an error — the
// sweep exists to price the optimization, and a vacuous measurement
// means the specializer regressed.
func Fig12PevalJobsTier(cfg sim.Config, workers int, tier fastsim.Tier) (*PevalResult, error) {
	specs := workloads.All()
	ec := hwcost.EC()
	res := &PevalResult{
		Sweep:           "fig12-peval",
		Tier:            tier.String(),
		ECEnergyPerOpFJ: ec.EnergyPerOpFJ(),
		Rows:            make([]PevalRow, len(specs)),
	}
	errs := runner.ForEach(context.Background(), len(specs), workers, func(i int) error {
		s := specs[i]
		sp, err := s.Specialized()
		if err != nil {
			return fmt.Errorf("%s: specialize: %w", s.Name, err)
		}
		v := workloads.VariantLMIElide
		grid := s.LaunchGrid(v)
		gen, err := workloads.RunProgramTierAtCtx(context.Background(), s, v, cfg, grid, tier, sp.Original, nil)
		if err != nil {
			return fmt.Errorf("%s: general run: %w", s.Name, err)
		}
		spec, err := workloads.RunProgramTierAtCtx(context.Background(), s, v, cfg, grid, tier, sp.Residual, nil)
		if err != nil {
			return fmt.Errorf("%s: specialized run: %w", s.Name, err)
		}
		if len(gen.Faults) != len(spec.Faults) || gen.Halted != spec.Halted {
			return fmt.Errorf("%s: residual diverged: %d faults halted=%v vs %d faults halted=%v",
				s.Name, len(gen.Faults), gen.Halted, len(spec.Faults), spec.Halted)
		}
		if gt, st := gen.ECChecked+gen.ECElided, spec.ECChecked+spec.ECElided; gt != st {
			return fmt.Errorf("%s: residual changed the lane-access volume: %d vs %d", s.Name, gt, st)
		}
		if spec.ECElided < gen.ECElided {
			return fmt.Errorf("%s: residual elided fewer checks than the general program (%d < %d)",
				s.Name, spec.ECElided, gen.ECElided)
		}
		avoided := spec.ECElided - gen.ECElided
		res.Rows[i] = PevalRow{
			Name: s.Name, Suite: s.Suite, Shape: sp.Cert.Shape,
			OrigInstrs: len(sp.Original.Instrs), ResidualInstrs: len(sp.Residual.Instrs),
			Transforms:    len(sp.Cert.Transforms),
			GeneralCycles: gen.Cycles, SpecCycles: spec.Cycles,
			GeneralElided: gen.ECElided, SpecElided: spec.ECElided,
			ChecksAvoided: avoided,
			EnergySavedNJ: float64(avoided) * ec.EnergyPerOpFJ() / 1e6,
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	for _, row := range res.Rows {
		res.Totals.GeneralCycles += row.GeneralCycles
		res.Totals.SpecCycles += row.SpecCycles
		res.Totals.ChecksAvoided += row.ChecksAvoided
		res.Totals.EnergySavedNJ += row.EnergySavedNJ
	}
	if res.Totals.SpecCycles >= res.Totals.GeneralCycles {
		return res, fmt.Errorf("specialization saved no cycles across the corpus (%d general, %d specialized)",
			res.Totals.GeneralCycles, res.Totals.SpecCycles)
	}
	res.Totals.CyclesSaved = res.Totals.GeneralCycles - res.Totals.SpecCycles
	if res.Totals.ChecksAvoided == 0 {
		return res, fmt.Errorf("specialization avoided no extent checks across the corpus; the energy measurement is vacuous")
	}
	return res, nil
}

// Table renders the sweep for the terminal (deterministic: no
// wall-clock columns).
func (r *PevalResult) Table() string {
	t := stats.NewTable("fig12-peval ("+r.Tier+" tier)",
		"benchmark", "instrs", "residual", "xforms", "cycles", "spec-cycles", "avoided", "energy-nJ")
	for _, row := range r.Rows {
		t.AddRowf(0, row.Name, row.OrigInstrs, row.ResidualInstrs, row.Transforms,
			row.GeneralCycles, row.SpecCycles, row.ChecksAvoided, fmt.Sprintf("%.3f", row.EnergySavedNJ))
	}
	return t.String() + fmt.Sprintf(
		"totals: %d -> %d cycles (%d saved), %d checks avoided, %.3f nJ saved (EC %.1f fJ/op)\n",
		r.Totals.GeneralCycles, r.Totals.SpecCycles, r.Totals.CyclesSaved,
		r.Totals.ChecksAvoided, r.Totals.EnergySavedNJ, r.ECEnergyPerOpFJ)
}

// WriteJSON writes the deterministic artifact: for a given tier and
// config the bytes are identical across runs and worker counts (no
// wall-clock data, fixed row order).
func (r *PevalResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
