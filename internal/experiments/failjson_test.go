package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lmi/internal/fastsim"
	"lmi/internal/runner"
	"lmi/internal/sim"
	"lmi/internal/workloads"
)

// TestFailedSweepStillEmitsJSON pins the trajectory-emission contract
// for failing sweeps: an experiment whose jobs error mid-sweep must
// still return its partial runner report alongside the error, and that
// report must serialise to valid JSON with every failure recorded —
// lmi-bench -json / LMI_BENCH_JSON rely on this to record failed runs
// instead of silently dropping them.
func TestFailedSweepStillEmitsJSON(t *testing.T) {
	bad := sim.ScaledConfig(1)
	bad.LineSize = 100 // not a power of two -> every NewDevice fails
	res, err := Fig01JobsTier(bad, 2, fastsim.TierCompiled)
	if err == nil {
		t.Fatal("bad-config sweep reported success")
	}
	if res == nil || res.Report == nil {
		t.Fatal("failed sweep dropped its partial report")
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := runner.WriteJSONFile(path, []*runner.Report{res.Report}); err != nil {
		t.Fatalf("WriteJSONFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		Name string `json:"name"`
		Jobs []struct {
			Job   string `json:"job"`
			Tier  string `json:"tier"`
			Error string `json:"error"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("emitted trajectory is not valid JSON: %v\n%s", err, data)
	}
	if len(decoded) != 1 || decoded[0].Name != "fig01" || len(decoded[0].Jobs) == 0 {
		t.Fatalf("trajectory shape: %s", data)
	}
	for _, j := range decoded[0].Jobs {
		if j.Error == "" {
			t.Errorf("job %s: failure not recorded in JSON", j.Job)
		}
		if j.Tier != "compiled" {
			t.Errorf("job %s: tier = %q, want \"compiled\"", j.Job, j.Tier)
		}
	}
}

// TestCycleTierOmittedFromJSON: default-tier job records must not grow
// a tier field, keeping pre-tier trajectory files byte-compatible.
func TestCycleTierOmittedFromJSON(t *testing.T) {
	cfg := sim.ScaledConfig(1)
	rep := runner.RunNamed("unit", []runner.Job{
		{Spec: workloads.ByName("nn"), Variant: workloads.VariantBase, Config: cfg},
	}, 1)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"tier"`) {
		t.Errorf("cycle-tier record leaks a tier field: %s", data)
	}
}
