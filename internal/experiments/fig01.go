package experiments

import (
	"lmi/internal/sim"
	"lmi/internal/stats"
	"lmi/internal/workloads"
)

// Fig01Row is one benchmark's memory-instruction breakdown by region.
type Fig01Row struct {
	Name   string
	Suite  string
	Global float64 // LDG/STG share
	Shared float64 // LDS/STS share
	Local  float64 // LDL/STL share
}

// Fig01Result is the Fig. 1 reproduction.
type Fig01Result struct {
	Rows []Fig01Row
}

// Fig01 reproduces "Ratio of memory instructions per region in GPU
// workloads": each benchmark's dynamic LDG/STG vs LDS/STS vs LDL/STL
// instruction shares under the unprotected baseline.
func Fig01(cfg sim.Config) (*Fig01Result, error) {
	res := &Fig01Result{}
	for _, s := range workloads.All() {
		st, err := runVariant(s, workloads.VariantBase, cfg)
		if err != nil {
			return nil, err
		}
		g, sh, lo := st.MemRegionShares()
		res.Rows = append(res.Rows, Fig01Row{
			Name: s.Name, Suite: s.Suite, Global: g, Shared: sh, Local: lo,
		})
	}
	return res, nil
}

// Table renders the result.
func (r *Fig01Result) Table() string {
	t := stats.NewTable("benchmark", "suite", "global", "shared", "local")
	for _, row := range r.Rows {
		t.AddRowf(3, row.Name, row.Suite, row.Global, row.Shared, row.Local)
	}
	return t.String()
}
