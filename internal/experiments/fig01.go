package experiments

import (
	"lmi/internal/fastsim"
	"lmi/internal/runner"
	"lmi/internal/sim"
	"lmi/internal/stats"
	"lmi/internal/workloads"
)

// Fig01Row is one benchmark's memory-instruction breakdown by region.
type Fig01Row struct {
	Name   string
	Suite  string
	Global float64 // LDG/STG share
	Shared float64 // LDS/STS share
	Local  float64 // LDL/STL share
}

// Fig01Result is the Fig. 1 reproduction.
type Fig01Result struct {
	Rows []Fig01Row
	// Report is the sweep's per-run timing report.
	Report *runner.Report
}

// Fig01 reproduces "Ratio of memory instructions per region in GPU
// workloads": each benchmark's dynamic LDG/STG vs LDS/STS vs LDL/STL
// instruction shares under the unprotected baseline.
func Fig01(cfg sim.Config) (*Fig01Result, error) { return Fig01Jobs(cfg, 0) }

// Fig01Jobs is Fig01 on a worker pool of the given size (<= 0 means
// runner.DefaultWorkers); the rendered table is identical at any size.
func Fig01Jobs(cfg sim.Config, workers int) (*Fig01Result, error) {
	return Fig01JobsTier(cfg, workers, fastsim.TierCycle)
}

// Fig01JobsTier is Fig01Jobs on a selected execution tier. On a failed
// sweep the partial result still carries the runner report alongside
// the error, so trajectory emission (-json/LMI_BENCH_JSON) records the
// failure instead of silently dropping the sweep.
func Fig01JobsTier(cfg sim.Config, workers int, tier fastsim.Tier) (*Fig01Result, error) {
	specs := workloads.All()
	jobs := make([]runner.Job, len(specs))
	for i, s := range specs {
		jobs[i] = runner.Job{Spec: s, Variant: workloads.VariantBase, Config: cfg, Tier: tier}
	}
	rep := runner.RunNamed("fig01", jobs, workers)
	res := &Fig01Result{Report: rep}
	sts, err := rep.Stats()
	if err != nil {
		return res, err
	}
	for i, s := range specs {
		g, sh, lo := sts[i].MemRegionShares()
		res.Rows = append(res.Rows, Fig01Row{
			Name: s.Name, Suite: s.Suite, Global: g, Shared: sh, Local: lo,
		})
	}
	return res, nil
}

// Table renders the result.
func (r *Fig01Result) Table() string {
	t := stats.NewTable("benchmark", "suite", "global", "shared", "local")
	for _, row := range r.Rows {
		t.AddRowf(3, row.Name, row.Suite, row.Global, row.Shared, row.Local)
	}
	return t.String()
}
