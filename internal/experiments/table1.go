package experiments

import "lmi/internal/stats"

// Table1Row is one pointer-lifecycle stage with the mechanisms that act
// at it (paper Table I) and where this repository implements the stage.
type Table1Row struct {
	Stage      string
	Techniques string
	// Here points at the code implementing that lifecycle stage in this
	// repository.
	Here string
}

// Table1 renders the pointer life cycle taxonomy, annotated with the
// implementation sites: LMI is the only scheme active at every stage
// (Correct-by-Construction, §IV-A2).
func Table1() []Table1Row {
	return []Table1Row{
		{Stage: "Pointer Generation",
			Techniques: "All",
			Here:       "alloc.GlobalAllocator/DeviceHeap + safety.(*LMI).TagAlloc, compiler tagExtent"},
		{Stage: "Pointer Update",
			Techniques: "Pointer Aligning [Baggy, LMI], Pointer Tracking [CHEx86]",
			Here:       "core.OCU.Check via sim integer-ALU hook (A/S hint bits)"},
		{Stage: "Pointer Dereferencing",
			Techniques: "Pointer Tagging [AOS, MPX, cuCatch, GPUShield], Memory Tagging [MTE, IMT], Tripwires [Califorms, REST, memcheck]",
			Here:       "core.EC.CheckAccess via sim LSU hook; safety.GPUShield/IMT CheckAccess"},
		{Stage: "Pointer Destruction",
			Techniques: "Canary [GMOD, clArmor]; LMI extent nullification",
			Here:       "compiler nullifyExtent after free/scope-exit; core.LivenessTracker.OnFree"},
	}
}

// RenderTable1 renders the taxonomy.
func RenderTable1() string {
	t := stats.NewTable("pointer life cycle", "method/technique", "implemented in")
	for _, r := range Table1() {
		t.AddRow(r.Stage, r.Techniques, r.Here)
	}
	return t.String()
}
