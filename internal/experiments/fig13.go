package experiments

import (
	"lmi/internal/compiler"
	"lmi/internal/sim"
	"lmi/internal/stats"
	"lmi/internal/workloads"
)

// Fig13Row is one benchmark's DBI slowdown.
type Fig13Row struct {
	Name  string
	Suite string
	// LMIDBI and Memcheck are normalized execution times (baseline = 1).
	LMIDBI   float64
	Memcheck float64
	// CheckLDSTRatio is the static LMI-check to LD/ST instruction ratio
	// the paper uses to explain per-benchmark variability (§XI-B).
	CheckLDSTRatio float64
}

// Fig13Result is the Fig. 13 reproduction.
type Fig13Result struct {
	Rows []Fig13Row
	// Geomeans (the paper reports 72.95x for LMI-DBI and 32.98x for
	// memcheck).
	LMIDBIMean, MemcheckMean float64
}

// Fig13 reproduces "Performance comparison between LMI with DBI and
// NVIDIA's Compute Sanitizer" (§XI-B): the software DBI implementation of
// LMI versus the memcheck tripwire tool, normalized to baseline, on the
// 24 non-AD benchmarks.
func Fig13(cfg sim.Config) (*Fig13Result, error) {
	return Fig13For(workloads.Fig13Set(), cfg)
}

// Fig13For runs the DBI comparison over an explicit benchmark subset
// (tests use a small subset; the bench harness runs the full Fig. 13
// set).
func Fig13For(specs []*workloads.Spec, cfg sim.Config) (*Fig13Result, error) {
	res := &Fig13Result{}
	var dbiN, mcN []float64
	for _, s := range specs {
		// DBI experiments run a reduced grid; the baseline must use the
		// same launch, so run it through the same DBIGrid path by
		// normalizing against a baseline launched at the DBI grid.
		base, err := runVariantAtDBIGrid(s, workloads.VariantBase, cfg)
		if err != nil {
			return nil, err
		}
		dbi, err := runVariantAtDBIGrid(s, workloads.VariantLMIDBI, cfg)
		if err != nil {
			return nil, err
		}
		mc, err := runVariantAtDBIGrid(s, workloads.VariantMemcheck, cfg)
		if err != nil {
			return nil, err
		}
		lmiProg, err := s.Compile(workloads.VariantLMI)
		if err != nil {
			return nil, err
		}
		checks, ldst := compiler.CheckInstructionCounts(lmiProg)
		row := Fig13Row{
			Name:     s.Name,
			Suite:    s.Suite,
			LMIDBI:   float64(dbi.Cycles) / float64(base.Cycles),
			Memcheck: float64(mc.Cycles) / float64(base.Cycles),
		}
		if ldst > 0 {
			row.CheckLDSTRatio = float64(checks) / float64(ldst)
		}
		res.Rows = append(res.Rows, row)
		dbiN = append(dbiN, row.LMIDBI)
		mcN = append(mcN, row.Memcheck)
	}
	res.LMIDBIMean = stats.Geomean(dbiN)
	res.MemcheckMean = stats.Geomean(mcN)
	return res, nil
}

// runVariantAtDBIGrid launches a benchmark at its (reduced) DBI grid for
// any variant, so DBI runs and their baseline share the launch geometry.
func runVariantAtDBIGrid(s *workloads.Spec, v workloads.Variant, cfg sim.Config) (*sim.KernelStats, error) {
	prog, err := s.Compile(v)
	if err != nil {
		return nil, err
	}
	dev, err := sim.NewDevice(cfg, workloads.NewMechanism(v))
	if err != nil {
		return nil, err
	}
	in, err := dev.Malloc(s.N * 4)
	if err != nil {
		return nil, err
	}
	out, err := dev.Malloc(s.N * 4)
	if err != nil {
		return nil, err
	}
	st, err := dev.Launch(prog, s.DBIGrid, s.Block, []uint64{in, out, s.N})
	if err != nil {
		return nil, err
	}
	if st.Halted || len(st.Faults) > 0 {
		return nil, &faultErr{spec: s.Name, variant: v.String(), rec: st.Faults[0]}
	}
	return st, nil
}

type faultErr struct {
	spec, variant string
	rec           sim.FaultRecord
}

func (e *faultErr) Error() string {
	return "experiments: " + e.spec + "/" + e.variant + ": unexpected fault: " + e.rec.String()
}

// Table renders the result.
func (r *Fig13Result) Table() string {
	t := stats.NewTable("benchmark", "suite", "lmi-dbi (x)", "memcheck (x)", "check/ldst")
	for _, row := range r.Rows {
		t.AddRowf(2, row.Name, row.Suite, row.LMIDBI, row.Memcheck, row.CheckLDSTRatio)
	}
	t.AddRowf(2, "GEOMEAN", "", r.LMIDBIMean, r.MemcheckMean, "")
	return t.String()
}
