package experiments

import (
	"lmi/internal/compiler"
	"lmi/internal/fastsim"
	"lmi/internal/runner"
	"lmi/internal/sim"
	"lmi/internal/stats"
	"lmi/internal/workloads"
)

// Fig13Row is one benchmark's DBI slowdown.
type Fig13Row struct {
	Name  string
	Suite string
	// LMIDBI and Memcheck are normalized execution times (baseline = 1).
	LMIDBI   float64
	Memcheck float64
	// CheckLDSTRatio is the static LMI-check to LD/ST instruction ratio
	// the paper uses to explain per-benchmark variability (§XI-B).
	CheckLDSTRatio float64
}

// Fig13Result is the Fig. 13 reproduction.
type Fig13Result struct {
	Rows []Fig13Row
	// Geomeans (the paper reports 72.95x for LMI-DBI and 32.98x for
	// memcheck; NaN when undefined — rendered as "n/a").
	LMIDBIMean, MemcheckMean float64
	// Report is the sweep's per-run timing report.
	Report *runner.Report
}

// fig13Variants is the per-benchmark job order of the Fig. 13 sweep;
// every run launches at the spec's reduced DBI grid so the baseline and
// the DBI runs share the launch geometry.
var fig13Variants = []workloads.Variant{
	workloads.VariantBase,
	workloads.VariantLMIDBI,
	workloads.VariantMemcheck,
}

// Fig13 reproduces "Performance comparison between LMI with DBI and
// NVIDIA's Compute Sanitizer" (§XI-B): the software DBI implementation of
// LMI versus the memcheck tripwire tool, normalized to baseline, on the
// 24 non-AD benchmarks.
func Fig13(cfg sim.Config) (*Fig13Result, error) {
	return Fig13Jobs(workloads.Fig13Set(), cfg, 0)
}

// Fig13For runs the DBI comparison over an explicit benchmark subset
// (tests use a small subset; the bench harness runs the full Fig. 13
// set).
func Fig13For(specs []*workloads.Spec, cfg sim.Config) (*Fig13Result, error) {
	return Fig13Jobs(specs, cfg, 0)
}

// Fig13Jobs is the DBI comparison over an explicit subset on a worker
// pool of the given size (<= 0 means runner.DefaultWorkers); the
// rendered table is identical at any size.
func Fig13Jobs(specs []*workloads.Spec, cfg sim.Config, workers int) (*Fig13Result, error) {
	return Fig13JobsTier(specs, cfg, workers, fastsim.TierCycle)
}

// Fig13JobsTier is Fig13Jobs on a selected execution tier. On a failed
// sweep the partial result still carries the runner report alongside
// the error, so trajectory emission records the failure instead of
// silently dropping the sweep.
func Fig13JobsTier(specs []*workloads.Spec, cfg sim.Config, workers int, tier fastsim.Tier) (*Fig13Result, error) {
	var jobs []runner.Job
	for _, s := range specs {
		for _, v := range fig13Variants {
			jobs = append(jobs, runner.Job{Spec: s, Variant: v, Config: cfg, AtDBIGrid: true, Tier: tier})
		}
	}
	rep := runner.RunNamed("fig13", jobs, workers)
	res := &Fig13Result{Report: rep}
	sts, err := rep.Stats()
	if err != nil {
		return res, err
	}
	var dbiN, mcN []float64
	for i, s := range specs {
		group := sts[i*len(fig13Variants) : (i+1)*len(fig13Variants)]
		base, dbi, mc := group[0], group[1], group[2]
		lmiProg, err := s.Compile(workloads.VariantLMI)
		if err != nil {
			return res, err
		}
		checks, ldst := compiler.CheckInstructionCounts(lmiProg)
		row := Fig13Row{
			Name:     s.Name,
			Suite:    s.Suite,
			LMIDBI:   float64(dbi.Cycles) / float64(base.Cycles),
			Memcheck: float64(mc.Cycles) / float64(base.Cycles),
		}
		if ldst > 0 {
			row.CheckLDSTRatio = float64(checks) / float64(ldst)
		}
		res.Rows = append(res.Rows, row)
		dbiN = append(dbiN, row.LMIDBI)
		mcN = append(mcN, row.Memcheck)
	}
	res.LMIDBIMean = checkedMean(dbiN)
	res.MemcheckMean = checkedMean(mcN)
	return res, nil
}

// Table renders the result.
func (r *Fig13Result) Table() string {
	t := stats.NewTable("benchmark", "suite", "lmi-dbi (x)", "memcheck (x)", "check/ldst")
	for _, row := range r.Rows {
		t.AddRowf(2, row.Name, row.Suite, row.LMIDBI, row.Memcheck, row.CheckLDSTRatio)
	}
	t.AddRowf(2, "GEOMEAN", "", r.LMIDBIMean, r.MemcheckMean, "")
	return t.String()
}
