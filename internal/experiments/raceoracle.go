package experiments

import (
	"encoding/json"
	"fmt"
	"os"

	"lmi/internal/fastsim"
	"lmi/internal/runner"
	"lmi/internal/sim"
	"lmi/internal/stats"
	"lmi/internal/workloads"
)

// RaceOracleRow is one (benchmark, variant) cell of the race-oracle
// overhead sweep: the Fig. 12 job run twice, with the dynamic
// shared-memory race oracle off and armed. The oracle is a pure
// observer in the timing model — shadowing happens outside the
// simulated pipeline — so the armed run must reproduce the exact cycle
// count of the plain run, and on the statically-proven-race-free corpus
// it must report zero races. What it does cost is bookkeeping per
// shared lane access, reported as SharedShadowed.
type RaceOracleRow struct {
	Name    string `json:"name"`
	Suite   string `json:"suite"`
	Variant string `json:"variant"`
	// Cycles is the simulated execution time, identical with the oracle
	// off and on (asserted by the sweep).
	Cycles uint64 `json:"cycles"`
	// SharedShadowed counts the shared-memory lane accesses the armed
	// oracle shadowed — its bookkeeping volume for this run.
	SharedShadowed uint64 `json:"shared_shadowed"`
	// Races is the armed oracle's finding count; 0 across the shipped
	// corpus.
	Races int `json:"races"`
}

// RaceOracleResult is the full race-oracle overhead sweep. Its JSON
// form carries no wall-clock data: for a given tier and config it is
// byte-identical across runs and worker counts.
type RaceOracleResult struct {
	Sweep string          `json:"sweep"`
	Tier  string          `json:"tier"`
	Rows  []RaceOracleRow `json:"rows"`
	// Reports are the off/on sweeps' per-run timing reports (not part
	// of the JSON artifact).
	Reports []*runner.Report `json:"-"`
}

// Fig12RaceOracleJobsTier runs the Fig. 12 sweep twice on the given
// tier — race oracle off, then armed — and cross-checks the two: any
// cycle-count perturbation by the oracle, any dynamic race on the
// statically-proven corpus, or any armed run that shadowed nothing on a
// shared-memory workload is an error.
func Fig12RaceOracleJobsTier(cfg sim.Config, workers int, tier fastsim.Tier) (*RaceOracleResult, error) {
	specs := workloads.All()
	offCfg, onCfg := cfg, cfg
	offCfg.RaceOracle = false
	onCfg.RaceOracle = true
	var offJobs, onJobs []runner.Job
	for _, s := range specs {
		for _, v := range fig12Variants {
			offJobs = append(offJobs, runner.Job{Spec: s, Variant: v, Config: offCfg, Tier: tier})
			onJobs = append(onJobs, runner.Job{Spec: s, Variant: v, Config: onCfg, Tier: tier})
		}
	}
	res := &RaceOracleResult{Sweep: "fig12-raceoracle", Tier: tier.String()}
	offRep := runner.RunNamed("fig12-raceoracle-off", offJobs, workers)
	res.Reports = append(res.Reports, offRep)
	offSts, err := offRep.Stats()
	if err != nil {
		return res, err
	}
	onRep := runner.RunNamed("fig12-raceoracle-on", onJobs, workers)
	res.Reports = append(res.Reports, onRep)
	onSts, err := onRep.Stats()
	if err != nil {
		return res, err
	}
	shadowed := uint64(0)
	for i := range offJobs {
		name := offJobs[i].Name()
		off, on := offSts[i], onSts[i]
		if off.Cycles != on.Cycles {
			return res, fmt.Errorf("%s: race oracle perturbed the timing model: %d cycles off, %d armed",
				name, off.Cycles, on.Cycles)
		}
		if len(on.Races) != 0 {
			return res, fmt.Errorf("%s: %d dynamic race(s) on the statically-proven-race-free corpus: %v",
				name, len(on.Races), on.Races)
		}
		if off.SharedShadowed != 0 {
			return res, fmt.Errorf("%s: disarmed oracle shadowed %d accesses", name, off.SharedShadowed)
		}
		shadowed += on.SharedShadowed
		res.Rows = append(res.Rows, RaceOracleRow{
			Name: offJobs[i].Spec.Name, Suite: offJobs[i].Spec.Suite,
			Variant: offJobs[i].Variant.String(),
			Cycles:  on.Cycles, SharedShadowed: on.SharedShadowed,
		})
	}
	if shadowed == 0 {
		return res, fmt.Errorf("armed oracle shadowed nothing across the whole sweep; the overhead measurement is vacuous")
	}
	return res, nil
}

// Table renders the sweep for the terminal (deterministic: no
// wall-clock columns).
func (r *RaceOracleResult) Table() string {
	t := stats.NewTable("fig12-raceoracle ("+r.Tier+" tier)",
		"benchmark", "variant", "cycles", "shared-shadowed", "races")
	for _, row := range r.Rows {
		t.AddRowf(0, row.Name, row.Variant, row.Cycles, row.SharedShadowed, row.Races)
	}
	return t.String()
}

// WriteJSON writes the deterministic artifact: for a given tier and
// config the bytes are identical across runs and worker counts (no
// wall-clock data, fixed row order).
func (r *RaceOracleResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
