package experiments

import (
	"fmt"

	"lmi/internal/fastsim"
	"lmi/internal/hwcost"
	"lmi/internal/runner"
	"lmi/internal/sim"
	"lmi/internal/stats"
	"lmi/internal/workloads"
)

// ElideRow is one benchmark under LMI with and without static
// extent-check elision: how many checks the bounds analysis discharged
// at compile time, and what that buys at the LSU.
type ElideRow struct {
	Name  string
	Suite string
	// StaticElided is the number of E bits in the elided program.
	StaticElided int
	// ECChecked and ECElided are the elided run's dynamic lane-access
	// counts: checks still executed vs checks skipped via the E hint.
	ECChecked uint64
	ECElided  uint64
	// ElidedFrac is ECElided over the total checkable accesses.
	ElidedFrac float64
	// LMICycles and ElideCycles are the run lengths of the two variants;
	// CycleDelta is their ratio (elide / plain, < 1 is a win).
	LMICycles   uint64
	ElideCycles uint64
	CycleDelta  float64
	// ECEnergySavedNJ prices the skipped checks with the hwcost EC
	// model: elided evaluations times the EC's per-op dynamic energy.
	ECEnergySavedNJ float64
}

// ElideResult is the full static-elision experiment.
type ElideResult struct {
	Rows []ElideRow
	// ElidedFracMean is the arithmetic mean of the dynamic elided
	// fractions; CycleDeltaMean the geomean of the cycle ratios.
	ElidedFracMean float64
	CycleDeltaMean float64
	// ECEnergySavedNJ totals the priced savings over the suite.
	ECEnergySavedNJ float64
	// Report is the sweep's per-run timing report.
	Report *runner.Report
}

// elideVariants is the per-benchmark job order of the elision sweep.
var elideVariants = []workloads.Variant{
	workloads.VariantLMI,
	workloads.VariantLMIElide,
}

// Elide measures static extent-check elision over the Table V suite:
// every benchmark under plain LMI and under LMI with the bounds
// analysis's proven checks elided, reporting the checks-elided fraction
// and the cycle and EC-energy deltas.
func Elide(cfg sim.Config) (*ElideResult, error) { return ElideJobs(cfg, 0) }

// ElideJobs is Elide on a worker pool of the given size (<= 0 means
// runner.DefaultWorkers); the rendered table is identical at any size.
func ElideJobs(cfg sim.Config, workers int) (*ElideResult, error) {
	return ElideJobsTier(cfg, workers, fastsim.TierCycle)
}

// ElideJobsTier is ElideJobs on a selected execution tier (the elided
// fraction and EC-energy columns are functional and tier-invariant; the
// cycle-delta column is only meaningful on the cycle tier). On a failed
// sweep the partial result still carries the runner report alongside
// the error.
func ElideJobsTier(cfg sim.Config, workers int, tier fastsim.Tier) (*ElideResult, error) {
	specs := workloads.All()
	var jobs []runner.Job
	for _, s := range specs {
		for _, v := range elideVariants {
			jobs = append(jobs, runner.Job{Spec: s, Variant: v, Config: cfg, Tier: tier})
		}
	}
	rep := runner.RunNamed("elide", jobs, workers)
	res := &ElideResult{Report: rep}
	sts, err := rep.Stats()
	if err != nil {
		return res, err
	}
	ecPerOpFJ := hwcost.EC().EnergyPerOpFJ()
	var fracs, deltas []float64
	for i, s := range specs {
		group := sts[i*len(elideVariants) : (i+1)*len(elideVariants)]
		lmi, elide := group[0], group[1]
		prog, err := s.Compile(workloads.VariantLMIElide)
		if err != nil {
			return res, fmt.Errorf("experiments: %s: elided compile: %w", s.Name, err)
		}
		row := ElideRow{
			Name: s.Name, Suite: s.Suite,
			StaticElided: prog.CountElided(),
			ECChecked:    elide.ECChecked, ECElided: elide.ECElided,
			LMICycles: lmi.Cycles, ElideCycles: elide.Cycles,
		}
		if total := elide.ECChecked + elide.ECElided; total > 0 {
			row.ElidedFrac = float64(elide.ECElided) / float64(total)
		}
		row.CycleDelta = float64(elide.Cycles) / float64(lmi.Cycles)
		row.ECEnergySavedNJ = float64(elide.ECElided) * ecPerOpFJ * 1e-6
		fracs = append(fracs, row.ElidedFrac)
		deltas = append(deltas, row.CycleDelta)
		res.ECEnergySavedNJ += row.ECEnergySavedNJ
		res.Rows = append(res.Rows, row)
	}
	res.ElidedFracMean = stats.Mean(fracs)
	res.CycleDeltaMean = checkedMean(deltas)
	return res, nil
}

// Table renders the result.
func (r *ElideResult) Table() string {
	t := stats.NewTable("benchmark", "suite", "E-sites", "checked", "elided",
		"elided-frac", "lmi cycles", "elide cycles", "delta", "EC saved (nJ)")
	for _, row := range r.Rows {
		t.AddRowf(4, row.Name, row.Suite, row.StaticElided,
			row.ECChecked, row.ECElided, row.ElidedFrac,
			row.LMICycles, row.ElideCycles, row.CycleDelta, row.ECEnergySavedNJ)
	}
	t.AddRowf(4, "MEAN", "", "", "", "", r.ElidedFracMean, "", "", r.CycleDeltaMean, r.ECEnergySavedNJ)
	return t.String()
}
