// Package experiments regenerates every table and figure of the paper's
// evaluation (§IX–§XI). Each experiment returns structured rows plus a
// rendered table; cmd/lmi-bench and the repository's bench_test.go drive
// them.
//
// Absolute cycle counts come from this repository's simulator, not the
// authors' testbed, so the *shape* of each result — who wins, by roughly
// what factor, where the outliers are — is the reproduction target (see
// EXPERIMENTS.md for paper-vs-measured).
package experiments

import (
	"fmt"

	"lmi/internal/sim"
	"lmi/internal/workloads"
)

// DefaultSimSMs is the scaled-down core count experiments run on (the
// Table IV machine has 80 SMs; grids are scaled accordingly, and
// mechanism overheads are per-SM effects).
const DefaultSimSMs = 4

// SimConfig returns the experiment simulator configuration.
func SimConfig() sim.Config { return sim.ScaledConfig(DefaultSimSMs) }

// runVariant executes one benchmark under one variant and returns cycles.
func runVariant(s *workloads.Spec, v workloads.Variant, cfg sim.Config) (*sim.KernelStats, error) {
	st, err := workloads.Run(s, v, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s: %w", s.Name, v, err)
	}
	if st.Halted || len(st.Faults) > 0 {
		return nil, fmt.Errorf("experiments: %s/%s: unexpected fault: %v", s.Name, v, st.Faults[0])
	}
	return st, nil
}
