// Package experiments regenerates every table and figure of the paper's
// evaluation (§IX–§XI). Each experiment returns structured rows plus a
// rendered table; cmd/lmi-bench and the repository's bench_test.go drive
// them.
//
// The workload x variant sweeps run through internal/runner's
// deterministic worker pool: results come back in submission order, so
// rendered tables are byte-identical whatever the pool size. Each
// sweep's Result carries the runner.Report with per-run wall-time and
// throughput.
//
// Absolute cycle counts come from this repository's simulator, not the
// authors' testbed, so the *shape* of each result — who wins, by roughly
// what factor, where the outliers are — is the reproduction target (see
// EXPERIMENTS.md for paper-vs-measured).
package experiments

import (
	"fmt"

	"lmi/internal/runner"
	"lmi/internal/sim"
	"lmi/internal/workloads"
)

// DefaultSimSMs is the scaled-down core count experiments run on (the
// Table IV machine has 80 SMs; grids are scaled accordingly, and
// mechanism overheads are per-SM effects).
const DefaultSimSMs = 4

// SimConfig returns the experiment simulator configuration.
func SimConfig() sim.Config { return sim.ScaledConfig(DefaultSimSMs) }

// cleanStats guards the harness against fault-reporting gaps: it
// converts a halted or faulting KernelStats into an error without ever
// indexing an empty fault slice (a kernel that halts with no recorded
// fault is itself a reportable harness bug, not a panic).
func cleanStats(spec string, v workloads.Variant, st *sim.KernelStats) error {
	if err := runner.FaultError(spec+"/"+v.String(), st); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	return nil
}

// runVariant executes one benchmark under one variant and returns cycles.
func runVariant(s *workloads.Spec, v workloads.Variant, cfg sim.Config) (*sim.KernelStats, error) {
	st, err := workloads.Run(s, v, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s: %w", s.Name, v, err)
	}
	if err := cleanStats(s.Name, v, st); err != nil {
		return nil, err
	}
	return st, nil
}
