package experiments

import (
	"fmt"

	"lmi/internal/alloc"
	"lmi/internal/stats"
	"lmi/internal/workloads"
)

// Fig04Row is one benchmark's fragmentation measurement.
type Fig04Row struct {
	Name     string
	Suite    string
	BasePeak uint64
	LMIPeak  uint64
	Overhead float64
}

// Fig04Result is the Fig. 4 reproduction.
type Fig04Result struct {
	Rows []Fig04Row
	// Geomean is the geometric-mean relative memory overhead (the paper
	// reports 18.73%).
	Geomean float64
}

// Fig04 reproduces "Memory overhead caused by 2^n-aligned memory
// buffers": each benchmark's allocation trace replayed under the stock
// and LMI allocators, comparing peak resident set.
func Fig04() (*Fig04Result, error) {
	res := &Fig04Result{}
	var ratios []float64
	for _, s := range workloads.All() {
		fr, err := alloc.MeasureFragmentation(s.AllocTrace)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", s.Name, err)
		}
		res.Rows = append(res.Rows, Fig04Row{
			Name: s.Name, Suite: s.Suite,
			BasePeak: fr.BasePeak, LMIPeak: fr.Pow2Peak, Overhead: fr.Overhead,
		})
		ratios = append(ratios, 1+fr.Overhead)
	}
	res.Geomean = checkedMean(ratios) - 1 // NaN ("n/a") when undefined
	return res, nil
}

// Table renders the result.
func (r *Fig04Result) Table() string {
	t := stats.NewTable("benchmark", "suite", "base peak (KiB)", "lmi peak (KiB)", "overhead")
	for _, row := range r.Rows {
		t.AddRowf(4, row.Name, row.Suite, row.BasePeak>>10, row.LMIPeak>>10, row.Overhead)
	}
	t.AddRowf(4, "GEOMEAN", "", "", "", r.Geomean)
	return t.String()
}
