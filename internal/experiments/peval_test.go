package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"lmi/internal/fastsim"
)

// TestFig12PevalDeterministicAcrossWorkers: the specialization sweep's
// JSON artifact is byte-identical across worker counts, reports a
// strictly positive cycle and energy saving, and covers the whole
// corpus.
func TestFig12PevalDeterministicAcrossWorkers(t *testing.T) {
	cfg := SimConfig()
	seq, err := Fig12PevalJobsTier(cfg, 1, fastsim.TierCycle)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	par, err := Fig12PevalJobsTier(cfg, 4, fastsim.TierCycle)
	if err != nil {
		t.Fatalf("workers=4: %v", err)
	}
	dir := t.TempDir()
	p1, p4 := filepath.Join(dir, "j1.json"), filepath.Join(dir, "j4.json")
	if err := seq.WriteJSON(p1); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteJSON(p4); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b4, err := os.ReadFile(p4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b4) {
		t.Fatalf("sweep JSON differs between -jobs 1 and -jobs 4")
	}
	if len(b1) == 0 || b1[len(b1)-1] != '\n' {
		t.Fatalf("artifact missing trailing newline")
	}
	var back PevalResult
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if seq.Totals.CyclesSaved == 0 || seq.Totals.EnergySavedNJ <= 0 {
		t.Fatalf("sweep reports no saving: %+v", seq.Totals)
	}
	for _, row := range seq.Rows {
		if row.Name == "" || row.Shape == "" {
			t.Fatalf("sweep left a hole in the rows: %+v", row)
		}
		if row.ResidualInstrs == 0 || row.OrigInstrs == 0 {
			t.Fatalf("%s: zero-length program in the sweep", row.Name)
		}
	}
	if got := seq.Table(); got == "" {
		t.Fatal("empty table render")
	}
}
