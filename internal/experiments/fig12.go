package experiments

import (
	"math"

	"lmi/internal/fastsim"
	"lmi/internal/runner"
	"lmi/internal/sim"
	"lmi/internal/stats"
	"lmi/internal/workloads"
)

// Fig12Row is one benchmark's normalized execution time under each
// hardware/compiler mechanism (baseline = 1.0).
type Fig12Row struct {
	Name      string
	Suite     string
	Baseline  uint64 // cycles
	Baggy     float64
	GPUShield float64
	LMI       float64
}

// Fig12Result is the full Fig. 12 reproduction.
type Fig12Result struct {
	Rows []Fig12Row
	// Geomeans of the normalized execution times (NaN when undefined —
	// rendered as "n/a").
	BaggyMean, GPUShieldMean, LMIMean float64
	// Peaks.
	BaggyPeak float64
	// Report is the sweep's per-run timing report.
	Report *runner.Report
}

// fig12Variants is the per-benchmark job order of the Fig. 12 sweep.
var fig12Variants = []workloads.Variant{
	workloads.VariantBase,
	workloads.VariantBaggy,
	workloads.VariantGPUShield,
	workloads.VariantLMI,
}

// Fig12 reproduces "Performance comparison among Baggy bounds, GPUShield,
// and LMI" (§XI-A): every Table V benchmark under the three mechanisms,
// normalized to the unprotected baseline.
func Fig12(cfg sim.Config) (*Fig12Result, error) { return Fig12Jobs(cfg, 0) }

// Fig12Jobs is Fig12 on a worker pool of the given size (<= 0 means
// runner.DefaultWorkers); the rendered table is identical at any size.
func Fig12Jobs(cfg sim.Config, workers int) (*Fig12Result, error) {
	return Fig12JobsTier(cfg, workers, fastsim.TierCycle)
}

// Fig12JobsTier is Fig12Jobs on a selected execution tier. Normalized
// execution times are only meaningful on the cycle tier (the compiled
// tier's Cycles field is an estimate); the tier knob exists for
// functional sweeps and throughput work. On a failed sweep the partial
// result still carries the runner report alongside the error.
func Fig12JobsTier(cfg sim.Config, workers int, tier fastsim.Tier) (*Fig12Result, error) {
	specs := workloads.All()
	var jobs []runner.Job
	for _, s := range specs {
		for _, v := range fig12Variants {
			jobs = append(jobs, runner.Job{Spec: s, Variant: v, Config: cfg, Tier: tier})
		}
	}
	rep := runner.RunNamed("fig12", jobs, workers)
	res := &Fig12Result{Report: rep}
	sts, err := rep.Stats()
	if err != nil {
		return res, err
	}
	var baggyN, shieldN, lmiN []float64
	for i, s := range specs {
		group := sts[i*len(fig12Variants) : (i+1)*len(fig12Variants)]
		base := group[0]
		row := Fig12Row{Name: s.Name, Suite: s.Suite, Baseline: base.Cycles}
		row.Baggy = float64(group[1].Cycles) / float64(base.Cycles)
		row.GPUShield = float64(group[2].Cycles) / float64(base.Cycles)
		row.LMI = float64(group[3].Cycles) / float64(base.Cycles)
		baggyN = append(baggyN, row.Baggy)
		shieldN = append(shieldN, row.GPUShield)
		lmiN = append(lmiN, row.LMI)
		res.Rows = append(res.Rows, row)
	}
	res.BaggyMean = checkedMean(baggyN)
	res.GPUShieldMean = checkedMean(shieldN)
	res.LMIMean = checkedMean(lmiN)
	res.BaggyPeak = stats.Max(baggyN)
	return res, nil
}

// checkedMean is GeomeanChecked with the undefined case encoded as NaN,
// which stats.Table renders as "n/a" instead of a fake ratio.
func checkedMean(xs []float64) float64 {
	g, ok := stats.GeomeanChecked(xs)
	if !ok {
		return math.NaN()
	}
	return g
}

// Table renders the result.
func (r *Fig12Result) Table() string {
	t := stats.NewTable("benchmark", "suite", "base cycles", "baggy", "gpushield", "lmi")
	for _, row := range r.Rows {
		t.AddRowf(4, row.Name, row.Suite, row.Baseline, row.Baggy, row.GPUShield, row.LMI)
	}
	t.AddRowf(4, "GEOMEAN", "", "", r.BaggyMean, r.GPUShieldMean, r.LMIMean)
	return t.String()
}
