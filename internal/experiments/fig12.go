package experiments

import (
	"lmi/internal/sim"
	"lmi/internal/stats"
	"lmi/internal/workloads"
)

// Fig12Row is one benchmark's normalized execution time under each
// hardware/compiler mechanism (baseline = 1.0).
type Fig12Row struct {
	Name      string
	Suite     string
	Baseline  uint64 // cycles
	Baggy     float64
	GPUShield float64
	LMI       float64
}

// Fig12Result is the full Fig. 12 reproduction.
type Fig12Result struct {
	Rows []Fig12Row
	// Geomeans of the normalized execution times.
	BaggyMean, GPUShieldMean, LMIMean float64
	// Peaks.
	BaggyPeak float64
}

// Fig12 reproduces "Performance comparison among Baggy bounds, GPUShield,
// and LMI" (§XI-A): every Table V benchmark under the three mechanisms,
// normalized to the unprotected baseline.
func Fig12(cfg sim.Config) (*Fig12Result, error) {
	res := &Fig12Result{}
	var baggyN, shieldN, lmiN []float64
	for _, s := range workloads.All() {
		base, err := runVariant(s, workloads.VariantBase, cfg)
		if err != nil {
			return nil, err
		}
		row := Fig12Row{Name: s.Name, Suite: s.Suite, Baseline: base.Cycles}
		for _, v := range []workloads.Variant{workloads.VariantBaggy,
			workloads.VariantGPUShield, workloads.VariantLMI} {
			st, err := runVariant(s, v, cfg)
			if err != nil {
				return nil, err
			}
			norm := float64(st.Cycles) / float64(base.Cycles)
			switch v {
			case workloads.VariantBaggy:
				row.Baggy = norm
				baggyN = append(baggyN, norm)
			case workloads.VariantGPUShield:
				row.GPUShield = norm
				shieldN = append(shieldN, norm)
			case workloads.VariantLMI:
				row.LMI = norm
				lmiN = append(lmiN, norm)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	res.BaggyMean = stats.Geomean(baggyN)
	res.GPUShieldMean = stats.Geomean(shieldN)
	res.LMIMean = stats.Geomean(lmiN)
	res.BaggyPeak = stats.Max(baggyN)
	return res, nil
}

// Table renders the result.
func (r *Fig12Result) Table() string {
	t := stats.NewTable("benchmark", "suite", "base cycles", "baggy", "gpushield", "lmi")
	for _, row := range r.Rows {
		t.AddRowf(4, row.Name, row.Suite, row.Baseline, row.Baggy, row.GPUShield, row.LMI)
	}
	t.AddRowf(4, "GEOMEAN", "", "", r.BaggyMean, r.GPUShieldMean, r.LMIMean)
	return t.String()
}
