package experiments

import (
	"fmt"

	"lmi/internal/sectest"
	"lmi/internal/sim"
	"lmi/internal/stats"
)

// Table2Row is one mechanism-comparison entry (paper Table II).
type Table2Row struct {
	Name      string
	Target    string
	Base      string
	Mechanism string
	// Coverage columns (●=full, ◐=partial, ○=none) — for the mechanisms
	// we execute, these are derived from the Table III run; for the
	// others they restate the cited papers.
	Global, Shared, Stack, Heap, Temporal string
	MetadataAccess                        string
	// PerfOverhead is measured for baggy/gpushield/lmi (from Fig. 12)
	// and quoted for the rest.
	PerfOverhead string
}

// Table2 assembles the mechanism-comparison table. When fig12 is
// non-nil its geomeans fill the measured overhead cells; otherwise the
// paper's numbers are quoted.
func Table2(fig12 *Fig12Result, table3 *sectest.Table3Result) []Table2Row {
	mark := func(detected, total int) string {
		switch {
		case detected == 0:
			return "none"
		case detected == total:
			return "full"
		default:
			return fmt.Sprintf("partial(%d/%d)", detected, total)
		}
	}
	covCell := func(col sectest.MechanismColumn, cat sectest.Category) string {
		c := table3.Counts(col)[cat]
		return mark(c[0], c[1])
	}
	tempCell := func(col sectest.MechanismColumn) string {
		_, _, td, tt := table3.Coverage(col)
		return mark(td, tt)
	}
	pct := func(x float64) string { return fmt.Sprintf("%.2f%%", 100*(x-1)) }

	baggy, shield, lmi := "72% (SPEC2000)", "0.8%", "0.2%"
	if fig12 != nil {
		baggy = pct(fig12.BaggyMean) + " (measured)"
		shield = pct(fig12.GPUShieldMean) + " (measured)"
		lmi = pct(fig12.LMIMean) + " (measured)"
	}

	return []Table2Row{
		{Name: "Baggy Bounds", Target: "CPU/GPU", Base: "SW", Mechanism: "Pointer Aligning",
			Global: "full", Shared: "full", Stack: "full", Heap: "full", Temporal: "none",
			MetadataAccess: "No (64-bit)", PerfOverhead: baggy},
		{Name: "No-Fat", Target: "CPU", Base: "HW", Mechanism: "Pointer Aligning",
			Global: "-", Shared: "-", Stack: "partial", Heap: "full", Temporal: "partial",
			MetadataAccess: "Yes", PerfOverhead: "8% (paper)"},
		{Name: "C3", Target: "CPU", Base: "HW", Mechanism: "Pointer Encryption",
			Global: "-", Shared: "-", Stack: "partial", Heap: "full", Temporal: "full",
			MetadataAccess: "No", PerfOverhead: "0.01% (paper)"},
		{Name: "clArmor", Target: "GPU", Base: "SW", Mechanism: "Canary",
			Global: clArmorGlobal(table3), Shared: "none", Stack: "none", Heap: "none",
			Temporal:       "none (frees via runtime)",
			MetadataAccess: "No", PerfOverhead: "x1.48 (paper)"},
		{Name: "GMOD", Target: "GPU", Base: "SW", Mechanism: "Canary",
			Global: covCell(sectest.ColGMOD, sectest.CatGlobalOoB), Shared: "none",
			Stack: "none", Heap: "none", Temporal: tempCell(sectest.ColGMOD),
			MetadataAccess: "No", PerfOverhead: "x3.06 (paper)"},
		{Name: "Compute Sanitizer", Target: "GPU", Base: "SW", Mechanism: "Tripwires",
			Global: "partial", Shared: "partial", Stack: "partial", Heap: "partial", Temporal: "full",
			MetadataAccess: "Yes", PerfOverhead: "x32.98 (paper) / see Fig. 13"},
		{Name: "GPUShield", Target: "GPU", Base: "HW", Mechanism: "Pointer Tagging",
			Global: covCell(sectest.ColGPUShield, sectest.CatGlobalOoB), Shared: "none",
			Stack:          covCell(sectest.ColGPUShield, sectest.CatLocalOoB),
			Heap:           covCell(sectest.ColGPUShield, sectest.CatHeapOoB),
			Temporal:       tempCell(sectest.ColGPUShield),
			MetadataAccess: "Yes", PerfOverhead: shield},
		{Name: "cuCatch", Target: "GPU", Base: "SW", Mechanism: "Pointer Tagging",
			Global:         covCell(sectest.ColCuCatch, sectest.CatGlobalOoB),
			Shared:         covCell(sectest.ColCuCatch, sectest.CatSharedOoB),
			Stack:          covCell(sectest.ColCuCatch, sectest.CatLocalOoB),
			Heap:           covCell(sectest.ColCuCatch, sectest.CatHeapOoB),
			Temporal:       tempCell(sectest.ColCuCatch),
			MetadataAccess: "Yes", PerfOverhead: "19% (paper)"},
		{Name: "IMT", Target: "GPU", Base: "HW", Mechanism: "Memory Tagging",
			Global: "full", Shared: "none", Stack: "none", Heap: "none", Temporal: "partial",
			MetadataAccess: "Yes", PerfOverhead: "2.69% (paper)"},
		{Name: "LMI", Target: "GPU", Base: "HW", Mechanism: "Pointer Aligning",
			Global:         covCell(sectest.ColLMI, sectest.CatGlobalOoB),
			Shared:         covCell(sectest.ColLMI, sectest.CatSharedOoB),
			Stack:          covCell(sectest.ColLMI, sectest.CatLocalOoB),
			Heap:           covCell(sectest.ColLMI, sectest.CatHeapOoB),
			Temporal:       tempCell(sectest.ColLMI),
			MetadataAccess: "No", PerfOverhead: lmi},
	}
}

// RenderTable2 runs what Table II needs (the security suite, plus Fig. 12
// if cfg is non-nil) and renders it.
func RenderTable2(cfg *sim.Config) (string, error) {
	return RenderTable2Jobs(cfg, 0)
}

// RenderTable2Jobs is RenderTable2 with the Fig. 12 sweep on a worker
// pool of the given size (<= 0 means runner.DefaultWorkers).
func RenderTable2Jobs(cfg *sim.Config, workers int) (string, error) {
	t3, err := sectest.RunTable3()
	if err != nil {
		return "", err
	}
	var f12 *Fig12Result
	if cfg != nil {
		f12, err = Fig12Jobs(*cfg, workers)
		if err != nil {
			return "", err
		}
	}
	t := stats.NewTable("name", "target", "base", "mechanism",
		"global", "shared", "stack", "heap", "temporal", "metadata", "perf overhead")
	for _, r := range Table2(f12, t3) {
		t.AddRow(r.Name, r.Target, r.Base, r.Mechanism,
			r.Global, r.Shared, r.Stack, r.Heap, r.Temporal, r.MetadataAccess, r.PerfOverhead)
	}
	return t.String(), nil
}

// clArmorGlobal scores clArmor's global-memory cell with its rule model
// over the live scenario suite.
func clArmorGlobal(t3 *sectest.Table3Result) string {
	det, total := 0, 0
	for _, cr := range t3.Cases {
		if cr.Scenario.Category != sectest.CatGlobalOoB {
			continue
		}
		total++
		if sectest.ClArmorDetects(cr.Scenario) {
			det++
		}
	}
	switch {
	case det == 0:
		return "none"
	case det == total:
		return "full"
	default:
		return fmt.Sprintf("partial(%d/%d)", det, total)
	}
}
