package compiler

import "lmi/internal/isa"

// Optimize runs peephole cleanups over a compiled program:
//
//  1. immediate folding — an operand whose only definition in the program
//     is a single unconditional `MOV r, #imm` is replaced by the
//     immediate form of the consuming instruction;
//  2. self-copy elimination — `MOV r, r` without an Activation hint is a
//     no-op (hinted self-moves are OCU-verified pointer moves and are
//     kept);
//  3. dead-move elimination — an unhinted, unconditional MOV whose
//     destination is never read is dropped.
//
// The evaluation (Figs. 12/13) deliberately runs the *unoptimized*
// generator output so that every mechanism sees identical code; Optimize
// exists for the codegen-quality ablation (BenchmarkAblationOptimizedCodegen),
// which shows LMI's relative overhead is insensitive to code quality.
// Folding relies on definitions textually preceding uses, which the
// structured IR builder guarantees; the differential fuzz tests cross-
// check optimized programs against the interpreter.
func Optimize(p *isa.Program) *isa.Program {
	q := foldImmediates(p)
	return removeDeadMoves(q)
}

// foldable maps opcodes to the source-operand index the immediate form
// replaces.
var foldable = map[isa.Opcode]int{
	isa.IADD: 1, isa.IMUL: 1, isa.IMNMX: 1, isa.SHL: 1, isa.SHR: 1,
	isa.AND: 1, isa.OR: 1, isa.XOR: 1, isa.SETP: 1, isa.SEL: 1,
	isa.IADD3: 2, isa.FADD: 1, isa.FMUL: 1, isa.FFMA: 2, isa.FSETP: 1,
}

// foldImmediates rewrites operands into immediate forms when the
// reaching definition is a MOV-immediate. Reaching definitions are
// tracked linearly and invalidated at every branch target (any point
// control can enter sideways), which makes the analysis conservative but
// sound for arbitrary layouts.
func foldImmediates(p *isa.Program) *isa.Program {
	// Branch-target entry points.
	entry := make([]bool, len(p.Instrs)+1)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op == isa.BRA || in.Op == isa.SSY {
			entry[in.Target] = true
		}
	}
	out := make([]isa.Instr, len(p.Instrs))
	copy(out, p.Instrs)
	type def struct {
		imm int32
		ok  bool
	}
	reach := map[isa.Reg]def{}
	for i := range out {
		if entry[i] {
			// Control may arrive here from elsewhere: forget everything.
			reach = map[isa.Reg]def{}
		}
		in := &out[i]
		// Fold this instruction's immediate-capable operand first (using
		// definitions reaching from above).
		if srcIdx, ok := foldable[in.Op]; ok && !in.HasImm &&
			!(in.Hint.A && in.Hint.PointerOperand() == srcIdx) {
			if r := in.Src[srcIdx]; r != isa.RZ {
				if d, ok := reach[r]; ok && d.ok {
					in.HasImm = true
					in.Imm = d.imm
					in.Src[srcIdx] = isa.RZ
				}
			}
		}
		// Then record this instruction's definition.
		if in.Dst != isa.RZ && in.WritesDst() {
			if in.Op == isa.MOV && in.HasImm && in.Pred == isa.PT && !in.PredNeg && !in.Hint.A {
				reach[in.Dst] = def{imm: in.Imm, ok: true}
			} else {
				delete(reach, in.Dst)
			}
		}
		// A branch does not invalidate the fall-through path's
		// definitions (the taken path re-enters at a target, which is
		// already invalidated above).
	}
	q := *p
	q.Instrs = out
	return &q
}

// removeDeadMoves drops self-copies and never-read unhinted MOVs,
// remapping branch targets.
func removeDeadMoves(p *isa.Program) *isa.Program {
	read := map[isa.Reg]bool{}
	for i := range p.Instrs {
		for _, r := range p.Instrs[i].Src {
			if r != isa.RZ {
				read[r] = true
			}
		}
	}
	keep := make([]bool, len(p.Instrs))
	for i := range p.Instrs {
		in := &p.Instrs[i]
		keep[i] = true
		if in.Op != isa.MOV || in.Hint.A || in.Pred != isa.PT || in.PredNeg {
			continue
		}
		if !in.HasImm && in.Dst == in.Src[0] {
			keep[i] = false // self-copy
			continue
		}
		if in.Dst != isa.RZ && !read[in.Dst] {
			keep[i] = false // never read
		}
	}
	newIdx := make([]int32, len(p.Instrs)+1)
	n := int32(0)
	for i := range p.Instrs {
		newIdx[i] = n
		if keep[i] {
			n++
		}
	}
	newIdx[len(p.Instrs)] = n
	var out []isa.Instr
	for i := range p.Instrs {
		if !keep[i] {
			continue
		}
		in := p.Instrs[i]
		if in.Op == isa.BRA || in.Op == isa.SSY {
			in.Target = newIdx[in.Target]
		}
		out = append(out, in)
	}
	q := *p
	q.Instrs = out
	return &q
}
