package compiler

import (
	"fmt"
	"sort"

	"lmi/internal/ir"
)

// interval is a value's live range over linearised IR positions.
type interval struct {
	val        ir.Value
	start, end int
}

// buildIntervals computes min/max occurrence intervals for every value,
// widened so that any interval overlapping a loop region covers the whole
// region (occurrence intervals alone are unsafe across back-edges).
// Values materialised in the prologue (alloca/shared/param results) start
// at position 0 so nothing reuses their registers before the prologue
// writes them.
func buildIntervals(f *ir.Func) []interval {
	type occ struct{ min, max int }
	occs := make(map[ir.Value]*occ)
	note := func(v ir.Value, pos int) {
		if v == ir.NoValue {
			return
		}
		o := occs[v]
		if o == nil {
			occs[v] = &occ{min: pos, max: pos}
			return
		}
		if pos < o.min {
			o.min = pos
		}
		if pos > o.max {
			o.max = pos
		}
	}

	pos := 0
	blockStart := make([]int, len(f.Blocks))
	blockEnd := make([]int, len(f.Blocks))
	for _, blk := range f.Blocks {
		blockStart[blk.ID] = pos
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			switch in.Op {
			case ir.OpAlloca, ir.OpShared, ir.OpParam:
				note(in.Dst, 0)
				note(in.Dst, pos)
			default:
				note(in.Dst, pos)
			}
			for _, a := range in.Args {
				note(a, pos)
			}
			pos++
		}
		blockEnd[blk.ID] = pos - 1
	}

	// Loop regions: a Br terminator targeting an earlier (or same) block
	// is a back-edge; the region spans [target start, branch position].
	type region struct{ lo, hi int }
	var regions []region
	for _, blk := range f.Blocks {
		t := blk.Terminator()
		if t != nil && t.Op == ir.OpBr && t.Target <= blk.ID {
			regions = append(regions, region{blockStart[t.Target], blockEnd[blk.ID]})
		}
	}
	ivs := make([]interval, 0, len(occs))
	for v, o := range occs {
		ivs = append(ivs, interval{val: v, start: o.min, end: o.max})
	}
	// Widen to loop regions until fixpoint (handles nesting).
	for changed := true; changed; {
		changed = false
		for i := range ivs {
			for _, r := range regions {
				if ivs[i].start <= r.hi && ivs[i].end >= r.lo { // overlap
					if ivs[i].start > r.lo {
						ivs[i].start = r.lo
						changed = true
					}
					if ivs[i].end < r.hi {
						ivs[i].end = r.hi
						changed = true
					}
				}
			}
		}
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].val < ivs[j].val
	})
	return ivs
}

// assignRegisters linear-scans intervals onto numRegs registers,
// returning value→register-index assignments. pick selects which values
// participate (general-purpose vs predicate class).
func assignRegisters(ivs []interval, numRegs int, pick func(ir.Value) bool, class string) (map[ir.Value]int, error) {
	assignment := make(map[ir.Value]int)
	freeRegs := make([]int, numRegs)
	for i := range freeRegs {
		freeRegs[i] = i
	}
	type active struct {
		end int
		reg int
	}
	var actives []active
	for _, iv := range ivs {
		if !pick(iv.val) {
			continue
		}
		// Expire intervals that ended at or before this start.
		keep := actives[:0]
		for _, a := range actives {
			if a.end <= iv.start {
				freeRegs = append(freeRegs, a.reg)
			} else {
				keep = append(keep, a)
			}
		}
		actives = keep
		if len(freeRegs) == 0 {
			return nil, fmt.Errorf("compiler: out of %s registers (%d live)", class, len(actives)+1)
		}
		// Lowest-numbered free register for determinism.
		sort.Ints(freeRegs)
		reg := freeRegs[0]
		freeRegs = freeRegs[1:]
		assignment[iv.val] = reg
		actives = append(actives, active{end: iv.end, reg: reg})
	}
	return assignment, nil
}
