package compiler

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"lmi/internal/bounds"
	"lmi/internal/ir"
	"lmi/internal/isa"
)

// elideContract is a minimal launch contract for the hand-built elide
// test kernels: one block of 64 threads, count parameter absent.
func elideContract() bounds.Contract {
	return bounds.Contract{CountParam: -1, BlockDimX: 64, GridDimX: 1}
}

// TestCompileElidedRejectsProvenOOB is the compile-time-diagnostic
// regression test: a kernel whose store provably lands outside its
// stack allocation for every contract-conforming launch must fail
// CompileElided with a positioned *bounds.OOBError — before any
// simulation.
func TestCompileElidedRejectsProvenOOB(t *testing.T) {
	b := ir.NewBuilder("oob_stack_kernel")
	out := b.Param(ir.PtrGlobal)
	buf := b.Alloca(256)
	// One byte past the 256-byte buffer: offset 64 elements of 4 bytes.
	b.Store(b.GEP(buf, b.ConstI(ir.I32, 64), 4, 0), b.ConstI(ir.I32, 1), 0)
	b.Store(b.GEP(out, b.ConstI(ir.I32, 0), 4, 0), b.ConstI(ir.I32, 0), 0)
	f := b.MustFinish()

	_, _, err := CompileElided(f, elideContract())
	if err == nil {
		t.Fatal("proven-out-of-bounds store compiled without error")
	}
	var oe *bounds.OOBError
	if !errors.As(err, &oe) {
		t.Fatalf("error is %T (%v), want *bounds.OOBError", err, err)
	}
	if !strings.Contains(oe.Error(), "provably out of bounds") {
		t.Errorf("diagnostic lacks the verdict: %v", oe)
	}
	if oe.Func != f.Name || oe.Access.Block < 0 || oe.Access.Index < 0 {
		t.Errorf("diagnostic not positioned: func %q, b%d[%d]", oe.Func, oe.Access.Block, oe.Access.Index)
	}
	if !oe.Access.Store {
		t.Errorf("diagnostic misclassifies the store: %+v", oe.Access)
	}
}

// TestCompileElidedByteIdentical: elided compilation is a pure function
// of (kernel, contract) — concurrent compiles (the -jobs sweeps) must
// produce byte-identical microcode.
func TestCompileElidedByteIdentical(t *testing.T) {
	build := func() *ir.Func {
		b := ir.NewBuilder("elide_det_kernel")
		in := b.Param(ir.PtrGlobal)
		out := b.Param(ir.PtrGlobal)
		n := b.Param(ir.I32)
		idx := b.And(b.GlobalTID(), b.Sub(n, b.ConstI(ir.I32, 1)))
		v := b.Load(ir.I32, b.GEP(in, idx, 4, 0), 0)
		b.Store(b.GEP(out, idx, 4, 0), v, 0)
		return b.MustFinish()
	}
	c := bounds.Contract{CountParam: 2, CountMin: 1, CountMax: 1 << 20,
		PtrBytesPerCount: 4, BlockDimX: 128, GridDimX: 16}
	encode := func(f *ir.Func) ([]byte, error) {
		p, _, err := CompileElided(f, c)
		if err != nil {
			return nil, err
		}
		if p.CountElided() == 0 {
			return nil, errors.New("guarded copy kernel elided nothing")
		}
		words, err := isa.EncodeProgram(p)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		for _, w := range words {
			for shift := 0; shift < 64; shift += 8 {
				buf.WriteByte(byte(w.Lo >> shift))
				buf.WriteByte(byte(w.Hi >> shift))
			}
		}
		return buf.Bytes(), nil
	}
	want, err := encode(build())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	got := make([][]byte, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = encode(build())
		}(i)
	}
	wg.Wait()
	for i := range got {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if !bytes.Equal(got[i], want) {
			t.Fatalf("worker %d produced different microcode (%d vs %d bytes)", i, len(got[i]), len(want))
		}
	}
}
