package compiler

import (
	"fmt"

	"lmi/internal/bounds"
	"lmi/internal/ir"
	"lmi/internal/isa"
)

// CompileElided compiles a kernel under ModeLMI with static extent-check
// elision: the bounds analysis classifies every checkable access under
// the launch contract, a proven-out-of-bounds access aborts compilation
// with a positioned diagnostic, and every proven-in-bounds
// LDG/STG/LDL/STL/ATOMG gets the E microcode hint so the LSU skips its
// extent check. (ATOMS is shared-memory and never extent-checked, so it
// carries no hint — parity with STS.)
//
// Plain Compile/CompileWithSourceMap are deliberately untouched: callers
// that need byte-identical unelided programs (chaos victims, the
// baseline variants) keep getting them.
func CompileElided(f *ir.Func, c bounds.Contract) (*isa.Program, *bounds.Result, error) {
	p, _, res, err := CompileElidedWithSourceMap(f, c)
	return p, res, err
}

// CompileElidedWithSourceMap is CompileElided returning the source map
// as well, for static analyses (the lint elide audit) that re-derive the
// hint placement.
func CompileElidedWithSourceMap(f *ir.Func, c bounds.Contract) (*isa.Program, []SourceLoc, *bounds.Result, error) {
	res, err := bounds.Analyze(f, c)
	if err != nil {
		return nil, nil, nil, err
	}
	if oob := res.OOB(); len(oob) > 0 {
		// Report the first proven-out-of-bounds access as a compile-time
		// error, positioned at its IR instruction — before any simulation.
		return nil, nil, res, &bounds.OOBError{Func: f.Name, Access: oob[0]}
	}
	p, src, err := CompileWithSourceMap(f, ModeLMI)
	if err != nil {
		return nil, nil, nil, err
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Op {
		case isa.LDG, isa.STG, isa.LDL, isa.STL, isa.ATOMG:
		default:
			continue
		}
		// OpLoad/OpStore/OpAtomicAdd lower to exactly one memory
		// instruction, so the (block, index) provenance identifies the
		// access uniquely.
		loc := src[i]
		if loc.Block >= 0 && res.Proven(loc.Block, loc.Index) {
			in.Hint.E = true
		}
	}
	if err := p.Validate(); err != nil {
		return nil, nil, nil, fmt.Errorf("compiler: elided program invalid: %w", err)
	}
	return p, src, res, nil
}
