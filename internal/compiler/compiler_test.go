package compiler

import (
	"strings"
	"testing"

	"lmi/internal/ir"
	"lmi/internal/isa"
)

func buildSaxpy(t *testing.T) *ir.Func {
	t.Helper()
	b := ir.NewBuilder("saxpy")
	X := b.Param(ir.PtrGlobal)
	Y := b.Param(ir.PtrGlobal)
	n := b.Param(ir.I32)
	a := b.ConstF(2.0)
	i := b.GlobalTID()
	b.If(b.ICmp(isa.CmpLT, i, n), func() {
		x := b.Load(ir.F32, b.GEP(X, i, 4, 0), 0)
		y := b.Load(ir.F32, b.GEP(Y, i, 4, 0), 0)
		b.Store(b.GEP(Y, i, 4, 0), b.FFMA(a, x, y), 0)
	}, nil)
	return b.MustFinish()
}

func TestAnalyzeFindsPointerArithmetic(t *testing.T) {
	f := buildSaxpy(t)
	facts, err := Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts.PtrArith) != 3 { // three GEPs
		t.Errorf("PtrArith = %d, want 3", len(facts.PtrArith))
	}
	if len(facts.Casts) != 0 || len(facts.PtrStores) != 0 {
		t.Errorf("unexpected facts: %+v", facts)
	}
	for _, pf := range facts.PtrArith {
		if pf.Operand != 0 {
			t.Errorf("GEP pointer operand = %d", pf.Operand)
		}
	}
}

func TestAnalyzeFlagsCastsAndPtrStores(t *testing.T) {
	b := ir.NewBuilder("casts")
	p := b.Param(ir.PtrGlobal)
	x := b.PtrToInt(p)
	q := b.IntToPtr(x, isa.SpaceGlobal)
	b.Store(q, b.ConstI(ir.I32, 1), 0)
	f := b.MustFinish()
	facts, err := Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts.Casts) != 2 {
		t.Errorf("Casts = %d, want 2", len(facts.Casts))
	}
	if err := CheckLMIRestrictions(f, facts); err == nil {
		t.Error("casts not rejected under LMI")
	}
	if _, err := Compile(f, ModeLMI); err == nil {
		t.Error("Compile(ModeLMI) accepted int<->ptr casts")
	}
	// Base mode compiles it fine.
	if _, err := Compile(f, ModeBase); err != nil {
		t.Errorf("Compile(ModeBase): %v", err)
	}

	// Storing a pointer to memory is restricted too.
	b2 := ir.NewBuilder("ptrstore")
	out := b2.Param(ir.PtrGlobal)
	b2.Store(out, out, 0)
	f2 := b2.MustFinish()
	facts2, _ := Analyze(f2)
	if len(facts2.PtrStores) != 1 {
		t.Errorf("PtrStores = %d", len(facts2.PtrStores))
	}
	if err := CheckLMIRestrictions(f2, facts2); err == nil {
		t.Error("pointer store not rejected under LMI")
	}
}

func TestCompileBaseVsLMI(t *testing.T) {
	f := buildSaxpy(t)
	base, err := Compile(f, ModeBase)
	if err != nil {
		t.Fatal(err)
	}
	lmi, err := Compile(f, ModeLMI)
	if err != nil {
		t.Fatal(err)
	}
	if base.CountHinted() != 0 {
		t.Errorf("base compile has %d hinted instructions", base.CountHinted())
	}
	if lmi.CountHinted() != 3 {
		t.Errorf("LMI compile has %d hinted instructions, want 3", lmi.CountHinted())
	}
	// Instruction counts match: hint bits live in reserved microcode
	// space, so LMI adds no instructions for a heap-free kernel.
	if len(base.Instrs) != len(lmi.Instrs) {
		t.Errorf("instruction counts differ: base %d, lmi %d", len(base.Instrs), len(lmi.Instrs))
	}
	dis := lmi.Disassemble()
	if !strings.Contains(dis, "[A S=0]") {
		t.Errorf("disassembly missing hint annotation:\n%s", dis)
	}
	if ModeBase.String() != "base" || ModeLMI.String() != "lmi" || Mode(9).String() == "" {
		t.Error("mode names")
	}
}

func TestCompileStackFrame(t *testing.T) {
	b := ir.NewBuilder("stack")
	out := b.Param(ir.PtrGlobal)
	buf := b.Alloca(96) // Fig. 7's 0x60-byte buffer
	tid := b.TID()
	b.Store(b.GEP(buf, tid, 4, 0), tid, 0)
	v := b.Load(ir.I32, b.GEP(buf, tid, 4, 0), 0)
	b.Store(b.GEP(out, tid, 4, 0), v, 0)
	f := b.MustFinish()

	base, err := Compile(f, ModeBase)
	if err != nil {
		t.Fatal(err)
	}
	if base.FrameSize != 96 {
		t.Errorf("base frame = %d, want 96", base.FrameSize)
	}
	lmi, err := Compile(f, ModeLMI)
	if err != nil {
		t.Fatal(err)
	}
	// LMI rounds the buffer to its 256-byte size class (§V-B).
	if lmi.FrameSize != 256 {
		t.Errorf("LMI frame = %d, want 256", lmi.FrameSize)
	}
	if len(lmi.StackBuffers) != 1 || lmi.StackBuffers[0].Extent != 1 {
		t.Errorf("stack buffers: %+v", lmi.StackBuffers)
	}
	// The prologue mirrors Fig. 7: load SP from c[0x0][0x28], subtract
	// the frame.
	dis := lmi.Disassemble()
	if !strings.Contains(dis, "LDC.64 R1, [RZ+40]") {
		t.Errorf("missing SP load:\n%s", dis)
	}
	if !strings.Contains(dis, "IADD3 R1, R1, RZ") {
		t.Errorf("missing frame decrement:\n%s", dis)
	}
}

func TestCompileSharedLayout(t *testing.T) {
	b := ir.NewBuilder("shared")
	s1 := b.Shared(100)
	s2 := b.Shared(300)
	tid := b.TID()
	b.Store(b.GEP(s1, tid, 4, 0), tid, 0)
	b.Store(b.GEP(s2, tid, 4, 0), tid, 0)
	f := b.MustFinish()
	base, err := Compile(f, ModeBase)
	if err != nil {
		t.Fatal(err)
	}
	if base.SharedSize != 412 { // 100 @0, then 300 @112 (16-aligned)
		t.Errorf("base shared = %d", base.SharedSize)
	}
	lmi, err := Compile(f, ModeLMI)
	if err != nil {
		t.Fatal(err)
	}
	// 100 -> 256-class, 300 -> 512-class, aligned: 0..256, 512..1024.
	if lmi.SharedSize != 1024 {
		t.Errorf("LMI shared = %d, want 1024", lmi.SharedSize)
	}
}

func TestCompileFreeNullification(t *testing.T) {
	b := ir.NewBuilder("heap")
	sz := b.ConstI(ir.I32, 512)
	p := b.Malloc(sz)
	b.Store(p, sz, 0)
	b.Free(p)
	f := b.MustFinish()
	lmi, err := Compile(f, ModeLMI)
	if err != nil {
		t.Fatal(err)
	}
	dis := lmi.Disassemble()
	// FREE followed by the SHL/SHR extent-nullification pair (§VIII).
	i := strings.Index(dis, "FREE")
	if i < 0 {
		t.Fatalf("no FREE:\n%s", dis)
	}
	rest := dis[i:]
	if !strings.Contains(rest, "SHL") || !strings.Contains(rest, "SHR") {
		t.Errorf("missing nullification after FREE:\n%s", rest)
	}
	base, _ := Compile(f, ModeBase)
	if len(base.Instrs)+2 != len(lmi.Instrs) {
		t.Errorf("LMI should add exactly the 2 nullification instrs: base %d, lmi %d",
			len(base.Instrs), len(lmi.Instrs))
	}
}

func TestCompileControlFlow(t *testing.T) {
	b := ir.NewBuilder("loops")
	out := b.Param(ir.PtrGlobal)
	n := b.ConstI(ir.I32, 10)
	acc := b.Var(b.ConstI(ir.I32, 0))
	b.For(n, func(i ir.Value) {
		b.If(b.ICmp(isa.CmpEQ, b.And(i, b.ConstI(ir.I32, 1)), b.ConstI(ir.I32, 0)), func() {
			b.Assign(acc, b.Add(acc, i))
		}, func() {
			b.Assign(acc, b.Sub(acc, i))
		})
	})
	b.Store(out, acc, 0)
	f := b.MustFinish()
	p, err := Compile(f, ModeLMI)
	if err != nil {
		t.Fatal(err)
	}
	// Every CondBr lowers to SSY + predicated BRA + BRA, with targets
	// resolved to instruction indices (Validate checks ranges).
	var ssy, bra int
	for i := range p.Instrs {
		switch p.Instrs[i].Op {
		case isa.SSY:
			ssy++
		case isa.BRA:
			bra++
		}
	}
	if ssy != 2 { // loop head + if
		t.Errorf("SSY count = %d, want 2", ssy)
	}
	if bra < 4 {
		t.Errorf("BRA count = %d", bra)
	}
}

func TestCompileRejectsBoolCopy(t *testing.T) {
	b := ir.NewBuilder("boolcopy")
	c := b.ICmp(isa.CmpEQ, b.ConstI(ir.I32, 0), b.ConstI(ir.I32, 0))
	b.Var(c) // bool Var -> OpCopy of a bool
	f := b.MustFinish()
	if _, err := Compile(f, ModeBase); err == nil {
		t.Error("bool copy accepted")
	}
}

func TestCompileHugeConstRejected(t *testing.T) {
	b := ir.NewBuilder("hugeconst")
	b.ConstI(ir.I64, 1<<40)
	f := b.MustFinish()
	if _, err := Compile(f, ModeBase); err == nil {
		t.Error("64-bit constant accepted into 32-bit immediate")
	}
}

func TestInstrumentBaggy(t *testing.T) {
	f := buildSaxpy(t)
	lmi, err := Compile(f, ModeLMI)
	if err != nil {
		t.Fatal(err)
	}
	baggy := InstrumentBaggy(lmi)
	if err := baggy.Validate(); err != nil {
		t.Fatalf("instrumented program invalid: %v", err)
	}
	// 3 pointer ops * 7 instructions each.
	if len(baggy.Instrs) != len(lmi.Instrs)+3*7 {
		t.Errorf("baggy size %d, want %d", len(baggy.Instrs), len(lmi.Instrs)+21)
	}
	if baggy.CountHinted() != 0 {
		t.Error("baggy program must not carry A hints (software-only)")
	}
	var traps int
	for i := range baggy.Instrs {
		if baggy.Instrs[i].Op == isa.TRAP {
			traps++
			if baggy.Instrs[i].Pred != instrPred {
				t.Error("TRAP must be guarded by the instrumentation predicate")
			}
		}
	}
	if traps != 3 {
		t.Errorf("traps = %d", traps)
	}
}

func TestInstrumentDBI(t *testing.T) {
	f := buildSaxpy(t)
	base, err := Compile(f, ModeBase)
	if err != nil {
		t.Fatal(err)
	}
	dbi := InstrumentDBI(base, LMIDBIOptions)
	if err := dbi.Validate(); err != nil {
		t.Fatalf("DBI program invalid: %v", err)
	}
	mc := InstrumentDBI(base, MemcheckOptions)
	if err := mc.Validate(); err != nil {
		t.Fatalf("memcheck program invalid: %v", err)
	}
	// LMI-DBI instruments int ALU + memory; memcheck only memory — so the
	// LMI-DBI expansion must be strictly larger.
	if len(dbi.Instrs) <= len(mc.Instrs) {
		t.Errorf("LMI-DBI (%d) should exceed memcheck (%d)", len(dbi.Instrs), len(mc.Instrs))
	}
	if len(mc.Instrs) <= len(base.Instrs) {
		t.Error("memcheck added nothing")
	}
	// Shadow loads present in memcheck.
	var shadow int
	for i := range mc.Instrs {
		if mc.Instrs[i].Op == isa.LDG && mc.Instrs[i].HasImm == false &&
			mc.Instrs[i].Dst == regTmp1 {
			shadow++
		}
	}
	if shadow == 0 {
		t.Error("memcheck has no shadow-table loads")
	}
}

func TestRewritePreservesBranchTargets(t *testing.T) {
	// A loop program: after expansion, the back-edge must land on the
	// first inserted instruction of its target group.
	b := ir.NewBuilder("looptgt")
	out := b.Param(ir.PtrGlobal)
	n := b.ConstI(ir.I32, 4)
	acc := b.Var(b.ConstI(ir.I32, 0))
	b.For(n, func(i ir.Value) {
		b.Store(b.GEP(out, i, 4, 0), acc, 0)
		b.Assign(acc, b.Add(acc, i))
	})
	f := b.MustFinish()
	lmi, err := Compile(f, ModeLMI)
	if err != nil {
		t.Fatal(err)
	}
	baggy := InstrumentBaggy(lmi)
	if err := baggy.Validate(); err != nil {
		t.Fatal(err)
	}
	// All BRA/SSY targets must point at in-range indices and the program
	// still ends with EXIT (Validate checks both); additionally, no
	// target may point into the middle of an inserted check (i.e., at a
	// TRAP or its SETP).
	for i := range baggy.Instrs {
		in := &baggy.Instrs[i]
		if in.Op == isa.BRA || in.Op == isa.SSY {
			tgt := baggy.Instrs[in.Target]
			if tgt.Op == isa.TRAP {
				t.Errorf("branch target %d lands on TRAP", in.Target)
			}
		}
	}
}

func TestCheckInstructionCounts(t *testing.T) {
	f := buildSaxpy(t)
	lmi, _ := Compile(f, ModeLMI)
	checks, ldst := CheckInstructionCounts(lmi)
	if checks != 3 || ldst != 3+3 { // 3 data LD/ST + 3 param LDC
		t.Errorf("checks=%d ldst=%d", checks, ldst)
	}
}
