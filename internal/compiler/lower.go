package compiler

import (
	"fmt"
	"math"

	"lmi/internal/alloc"
	"lmi/internal/core"
	"lmi/internal/ir"
	"lmi/internal/isa"
)

// Mode selects the compilation discipline.
type Mode int

const (
	// ModeBase compiles without any safety support: conventional stack
	// layout, no pointer tagging, no hint bits.
	ModeBase Mode = iota
	// ModeLMI compiles with full LMI support: 2^n-aligned stack and
	// shared layout, extent tagging of stack/shared pointers, hint bits
	// on pointer operations, extent nullification on free/scope-exit,
	// and rejection of int<->ptr casts and in-memory pointers.
	ModeLMI
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeBase:
		return "base"
	case ModeLMI:
		return "lmi"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Constant-bank layout (byte offsets). The stack pointer lives at
// c[0x0][0x28] as in real SASS (paper Fig. 7); parameters start at
// c[0x0][0x140] per the CUDA ABI.
const (
	// StackPtrConstOffset is the constant-bank byte offset of the
	// per-thread stack top.
	StackPtrConstOffset = 0x28
	// ParamConstBase is the constant-bank byte offset of parameter 0;
	// parameter i occupies the 8-byte word at ParamConstBase + 8*i.
	ParamConstBase = 0x140
)

// Register conventions of the generated code.
const (
	regTmp0   = isa.Reg(0)   // lowering scratch
	regSP     = isa.Reg(1)   // stack pointer, as in SASS
	regTmp1   = isa.Reg(2)   // lowering scratch
	regTmp2   = isa.Reg(3)   // scratch reserved for instrumentation
	regVal0   = isa.Reg(4)   // first allocatable value register
	regValMax = isa.Reg(254) // last allocatable value register
)

// lowerer carries compilation state for one kernel.
type lowerer struct {
	f     *ir.Func
	mode  Mode
	facts *Facts

	regs  map[ir.Value]int // value -> GP register index (0 => regVal0)
	preds map[ir.Value]int // bool value -> predicate register

	frame      alloc.FrameLayout
	allocaIdx  map[ir.Value]int // alloca value -> frame buffer index
	sharedOff  map[ir.Value]uint64
	sharedExt  map[ir.Value]core.Extent
	sharedSize uint64

	// ptrArith[blk][idx] = pointer operand index, for hinted instructions.
	ptrArith map[ir.BlockID]map[int]int

	out        []isa.Instr
	srcMap     []SourceLoc
	blockStart map[ir.BlockID]int
	maxReg     isa.Reg

	// curBlock/curIdx locate the IR instruction currently being lowered;
	// emit records them into srcMap. The prologue runs before any IR
	// instruction and uses the (-1, -1) sentinel.
	curBlock ir.BlockID
	curIdx   int

	// err records the first lowering failure (a value with no assigned
	// register/predicate). reg/pred have ~50 call sites threaded through
	// emission; accumulating the error and checking it once after emitAll
	// keeps them plain accessors while still failing the compile instead
	// of panicking.
	err error
}

// fail records the first lowering error.
func (lw *lowerer) fail(format string, args ...any) {
	if lw.err == nil {
		lw.err = fmt.Errorf(format, args...)
	}
}

// SourceLoc is the per-instruction provenance record CompileWithSourceMap
// emits alongside the program: which IR instruction each ISA instruction
// was lowered from, and whether the IR-level pointer-operand analysis
// marked that instruction as a pointer operation (the fact the hint bits
// encode). Static analyses cross-check the facts against the emitted
// hints and their own register-level dataflow.
type SourceLoc struct {
	// Block and Index locate the originating IR instruction; prologue
	// instructions (stack setup, alloca/shared materialisation) carry the
	// (-1, -1) sentinel.
	Block ir.BlockID
	Index int
	// Fact records that the pointer-operand analysis marked the
	// originating IR instruction and the backend requested hint bits on
	// this ISA instruction.
	Fact bool
	// Operand is the hinted source-operand index when Fact is set.
	Operand int
}

// Compile lowers a verified IR kernel to an ISA program under the given
// mode.
func Compile(f *ir.Func, mode Mode) (*isa.Program, error) {
	p, _, err := CompileWithSourceMap(f, mode)
	return p, err
}

// CompileWithSourceMap lowers a verified IR kernel and additionally
// returns the per-instruction source map (parallel to Instrs) linking
// every emitted instruction to its IR origin and recorded pointer fact.
func CompileWithSourceMap(f *ir.Func, mode Mode) (*isa.Program, []SourceLoc, error) {
	facts, err := Analyze(f)
	if err != nil {
		return nil, nil, err
	}
	if mode == ModeLMI {
		if err := CheckLMIRestrictions(f, facts); err != nil {
			return nil, nil, err
		}
	}
	lw := &lowerer{
		f:          f,
		mode:       mode,
		facts:      facts,
		allocaIdx:  map[ir.Value]int{},
		sharedOff:  map[ir.Value]uint64{},
		sharedExt:  map[ir.Value]core.Extent{},
		ptrArith:   map[ir.BlockID]map[int]int{},
		blockStart: map[ir.BlockID]int{},
		curBlock:   -1,
		curIdx:     -1,
	}
	for _, pf := range facts.PtrArith {
		m := lw.ptrArith[pf.Block]
		if m == nil {
			m = map[int]int{}
			lw.ptrArith[pf.Block] = m
		}
		m[pf.Index] = pf.Operand
	}
	if err := lw.allocateRegisters(); err != nil {
		return nil, nil, err
	}
	if err := lw.layoutMemory(); err != nil {
		return nil, nil, err
	}
	if err := lw.emitAll(); err != nil {
		return nil, nil, err
	}
	if lw.err != nil {
		return nil, nil, lw.err
	}
	prog := &isa.Program{
		Name:          f.Name,
		Instrs:        lw.out,
		FrameSize:     uint32(lw.frame.FrameSize),
		SharedSize:    uint32(lw.sharedSize),
		NumRegs:       int(lw.maxReg) + 1,
		NumParams:     len(f.Params),
		StackPtrConst: StackPtrConstOffset,
		ParamBase:     ParamConstBase,
	}
	for _, t := range f.Params {
		prog.ParamPtrs = append(prog.ParamPtrs, t.IsPtr())
	}
	for _, b := range lw.frame.Buffers {
		prog.StackBuffers = append(prog.StackBuffers, isa.StackBuffer{
			Offset: uint32(b.Offset), Size: uint32(b.Reserved), Extent: uint8(b.Extent),
		})
	}
	if err := prog.Validate(); err != nil {
		return nil, nil, fmt.Errorf("compiler: generated invalid program: %w", err)
	}
	return prog, lw.srcMap, nil
}

func (lw *lowerer) allocateRegisters() error {
	ivs := buildIntervals(lw.f)
	var err error
	lw.preds, err = assignRegisters(ivs, isa.NumPredRegs,
		func(v ir.Value) bool { return lw.f.TypeOf(v).Kind == ir.KindBool }, "predicate")
	if err != nil {
		return err
	}
	numGP := int(regValMax-regVal0) + 1
	lw.regs, err = assignRegisters(ivs, numGP,
		func(v ir.Value) bool {
			k := lw.f.TypeOf(v).Kind
			return k != ir.KindBool && k != ir.KindVoid
		}, "general-purpose")
	return err
}

func (lw *lowerer) layoutMemory() error {
	var allocaSizes []uint64
	var allocaVals []ir.Value
	var sharedTop uint64
	policy := alloc.PolicyBase
	if lw.mode == ModeLMI {
		policy = alloc.PolicyPow2
	}
	codec := core.DefaultCodec
	for i := range lw.f.Entry().Instrs {
		in := &lw.f.Entry().Instrs[i]
		switch in.Op {
		case ir.OpAlloca:
			lw.allocaIdx[in.Dst] = len(allocaSizes)
			allocaSizes = append(allocaSizes, in.Size)
			allocaVals = append(allocaVals, in.Dst)
		case ir.OpShared:
			if lw.mode == ModeLMI {
				// LMI protects statically allocated shared objects
				// (§IX-A): round to the size class and align the offset.
				e, err := codec.ExtentForSize(in.Size)
				if err != nil {
					return fmt.Errorf("compiler: %s: shared buffer: %w", lw.f.Name, err)
				}
				sz := codec.SizeForExtent(e)
				sharedTop = (sharedTop + sz - 1) &^ (sz - 1)
				lw.sharedOff[in.Dst] = sharedTop
				lw.sharedExt[in.Dst] = e
				sharedTop += sz
			} else {
				sharedTop = (sharedTop + 15) &^ 15
				lw.sharedOff[in.Dst] = sharedTop
				sharedTop += in.Size
			}
		}
	}
	_ = allocaVals
	fl, err := alloc.LayoutFrame(allocaSizes, policy)
	if err != nil {
		return fmt.Errorf("compiler: %s: %w", lw.f.Name, err)
	}
	if lw.mode == ModeLMI {
		if err := fl.Verify(); err != nil {
			return fmt.Errorf("compiler: %s: %w", lw.f.Name, err)
		}
	}
	lw.frame = fl
	lw.sharedSize = sharedTop
	return nil
}

// reg returns the physical register of a non-bool value. A value with no
// assignment records a compile error and yields RZ so emission can
// continue to the post-emitAll error check.
func (lw *lowerer) reg(v ir.Value) isa.Reg {
	idx, ok := lw.regs[v]
	if !ok {
		lw.fail("compiler: %s: no register for %%v%d", lw.f.Name, v)
		return isa.RZ
	}
	r := regVal0 + isa.Reg(idx)
	if r > lw.maxReg {
		lw.maxReg = r
	}
	return r
}

// pred returns the predicate register of a bool value, recording a
// compile error (and yielding PT) when none was assigned.
func (lw *lowerer) pred(v ir.Value) isa.PredReg {
	idx, ok := lw.preds[v]
	if !ok {
		lw.fail("compiler: %s: no predicate for %%v%d", lw.f.Name, v)
		return isa.PT
	}
	return isa.PredReg(idx)
}

func (lw *lowerer) emit(in isa.Instr) {
	if in.Pred == 0 && !in.PredNeg {
		// Convention: zero-value Pred means unconditional. Callers that
		// want P0 set Pred explicitly along with predGuard.
		in.Pred = isa.PT
	}
	if in.Src == ([3]isa.Reg{}) {
		in.Src = [3]isa.Reg{isa.RZ, isa.RZ, isa.RZ}
	}
	lw.out = append(lw.out, in)
	lw.recordLoc(&in)
}

// emitG emits with an explicit guard predicate.
func (lw *lowerer) emitG(in isa.Instr, pred isa.PredReg, neg bool) {
	in.Pred = pred
	in.PredNeg = neg
	if in.Src == ([3]isa.Reg{}) {
		in.Src = [3]isa.Reg{isa.RZ, isa.RZ, isa.RZ}
	}
	lw.out = append(lw.out, in)
	lw.recordLoc(&in)
}

// recordLoc appends the source-map entry for the instruction just
// emitted. Hint bits are only ever set from the analysis facts
// (hintFor), so Fact at emission time is exactly "the IR analysis
// marked this instruction as a pointer operation".
func (lw *lowerer) recordLoc(in *isa.Instr) {
	lw.srcMap = append(lw.srcMap, SourceLoc{
		Block:   lw.curBlock,
		Index:   lw.curIdx,
		Fact:    in.Hint.A,
		Operand: in.Hint.PointerOperand(),
	})
}

// tagExtent emits the pointer-generation sequence that installs an extent
// into rd's upper bits: MOV tmp,#e; SHL tmp,tmp,#59; OR rd,rd,tmp. These
// instructions are deliberately unhinted — pointer generation is trusted
// by construction (§IV-A2).
func (lw *lowerer) tagExtent(rd isa.Reg, e core.Extent) {
	lw.emit(isa.Instr{Op: isa.MOV, Dst: regTmp0, HasImm: true, Imm: int32(e)})
	lw.emit(isa.Instr{Op: isa.SHL, Dst: regTmp0, Aux: isa.AuxW64,
		Src:    [3]isa.Reg{regTmp0, isa.RZ, isa.RZ},
		HasImm: true, Imm: int32(core.ExtentShift)})
	lw.emit(isa.Instr{Op: isa.OR, Dst: rd, Aux: isa.AuxW64,
		Src: [3]isa.Reg{rd, regTmp0, isa.RZ}})
}

// nullifyExtent emits the pointer-destruction sequence SHL r,r,#5;
// SHR r,r,#5 that clears the extent field (§VIII).
func (lw *lowerer) nullifyExtent(r isa.Reg) {
	lw.emit(isa.Instr{Op: isa.SHL, Dst: r, Aux: isa.AuxW64,
		Src:    [3]isa.Reg{r, isa.RZ, isa.RZ},
		HasImm: true, Imm: int32(core.ExtentFieldBits)})
	lw.emit(isa.Instr{Op: isa.SHR, Dst: r, Aux: isa.AuxW64,
		Src:    [3]isa.Reg{r, isa.RZ, isa.RZ},
		HasImm: true, Imm: int32(core.ExtentFieldBits)})
}

func (lw *lowerer) emitAll() error {
	lw.emitPrologue()
	for _, blk := range lw.f.Blocks {
		lw.blockStart[blk.ID] = len(lw.out)
		for i := range blk.Instrs {
			lw.curBlock, lw.curIdx = blk.ID, i
			if err := lw.lowerInstr(blk, i, &blk.Instrs[i]); err != nil {
				return err
			}
		}
	}
	// Patch branch targets from block IDs to instruction indices.
	for i := range lw.out {
		in := &lw.out[i]
		if in.Op == isa.BRA || in.Op == isa.SSY {
			start, ok := lw.blockStart[ir.BlockID(in.Target)]
			if !ok {
				return fmt.Errorf("compiler: %s: unresolved block b%d", lw.f.Name, in.Target)
			}
			in.Target = int32(start)
		}
	}
	return nil
}

// emitPrologue sets up the stack frame (Fig. 7) and materialises alloca
// and shared-buffer pointers.
func (lw *lowerer) emitPrologue() {
	if lw.frame.FrameSize > 0 {
		// Load the stack top from constant memory and secure the frame,
		// mirroring "MOV R1, c[0x0][0x28]; IADD3 R1, R1, -0x60, RZ".
		lw.emit(isa.Instr{Op: isa.LDC, Dst: regSP, Src: [3]isa.Reg{isa.RZ, isa.RZ, isa.RZ},
			Imm: StackPtrConstOffset, Aux: 3})
		lw.emit(isa.Instr{Op: isa.IADD3, Dst: regSP, Aux: isa.AuxW64,
			Src:    [3]isa.Reg{regSP, isa.RZ, isa.RZ},
			HasImm: true, Imm: int32(-int64(lw.frame.FrameSize))})
	}
	for i := range lw.f.Entry().Instrs {
		in := &lw.f.Entry().Instrs[i]
		switch in.Op {
		case ir.OpAlloca:
			fb := lw.frame.Buffers[lw.allocaIdx[in.Dst]]
			rd := lw.reg(in.Dst)
			lw.emit(isa.Instr{Op: isa.IADD, Dst: rd, Aux: isa.AuxW64,
				Src:    [3]isa.Reg{regSP, isa.RZ, isa.RZ},
				HasImm: true, Imm: int32(fb.Offset)})
			if lw.mode == ModeLMI {
				lw.tagExtent(rd, core.Extent(fb.Extent))
			}
		case ir.OpShared:
			rd := lw.reg(in.Dst)
			lw.emit(isa.Instr{Op: isa.MOV, Dst: rd, HasImm: true, Imm: int32(lw.sharedOff[in.Dst])})
			if lw.mode == ModeLMI {
				lw.tagExtent(rd, lw.sharedExt[in.Dst])
			}
		}
	}
}

// hintFor returns the hint bits for an IR instruction, if the analysis
// marked it and the mode emits hints.
func (lw *lowerer) hintFor(blk ir.BlockID, idx int, srcPos int) isa.Hint {
	if lw.mode != ModeLMI {
		return isa.Hint{}
	}
	if m := lw.ptrArith[blk]; m != nil {
		if _, ok := m[idx]; ok {
			return isa.Hint{A: true, S: srcPos == 1}
		}
	}
	return isa.Hint{}
}

// w64For returns the AuxW64 flag when a value's type requires 64-bit
// integer arithmetic (i64 and pointers); i32 arithmetic narrows to 32
// bits with sign extension, as in SASS.
func w64For(t ir.Type) uint8 {
	if t.Kind == ir.KindI64 || t.IsPtr() {
		return isa.AuxW64
	}
	return 0
}

var intOpcode = map[ir.Op]isa.Opcode{
	ir.OpAdd: isa.IADD, ir.OpSub: isa.IADD, ir.OpMul: isa.IMUL,
	ir.OpMin: isa.IMNMX, ir.OpMax: isa.IMNMX,
	ir.OpShl: isa.SHL, ir.OpShr: isa.SHR,
	ir.OpAnd: isa.AND, ir.OpOr: isa.OR, ir.OpXor: isa.XOR,
}

var floatOpcode = map[ir.Op]isa.Opcode{
	ir.OpFAdd: isa.FADD, ir.OpFSub: isa.FADD, ir.OpFMul: isa.FMUL,
}

var mufuFn = map[ir.Op]isa.MufuFn{
	ir.OpFRcp: isa.MufuRCP, ir.OpFSqrt: isa.MufuSQRT, ir.OpFExp2: isa.MufuEX2,
	ir.OpFLog2: isa.MufuLG2, ir.OpFSin: isa.MufuSIN,
}

var memOpcode = map[isa.Space][2]isa.Opcode{
	isa.SpaceGlobal: {isa.LDG, isa.STG},
	isa.SpaceShared: {isa.LDS, isa.STS},
	isa.SpaceLocal:  {isa.LDL, isa.STL},
}

// accAux builds the Aux field for a memory access of the given type:
// log2(size), plus the sign-extension bit for 4-byte integer loads.
func accAux(t ir.Type, load bool) uint8 {
	var lg uint8
	switch t.Size() {
	case 1:
		lg = 0
	case 2:
		lg = 1
	case 4:
		lg = 2
	default:
		lg = 3
	}
	if load && t.Kind == ir.KindI32 {
		lg |= isa.AuxSignExt
	}
	return lg
}

func (lw *lowerer) lowerInstr(blk *ir.Block, idx int, in *ir.Instr) error {
	f := lw.f
	switch in.Op {
	case ir.OpConstI:
		if in.Imm > math.MaxInt32 || in.Imm < math.MinInt32 {
			return fmt.Errorf("compiler: %s: constant %d exceeds 32-bit immediate", f.Name, in.Imm)
		}
		lw.emit(isa.Instr{Op: isa.MOV, Dst: lw.reg(in.Dst), HasImm: true, Imm: int32(in.Imm)})
	case ir.OpConstF:
		lw.emit(isa.Instr{Op: isa.MOV, Dst: lw.reg(in.Dst), HasImm: true,
			Imm: int32(math.Float32bits(in.FImm))})
	case ir.OpParam:
		lw.emit(isa.Instr{Op: isa.LDC, Dst: lw.reg(in.Dst), Src: [3]isa.Reg{isa.RZ, isa.RZ, isa.RZ},
			Imm: int32(ParamConstBase + 8*in.Index), Aux: 3})
	case ir.OpSpecial:
		lw.emit(isa.Instr{Op: isa.S2R, Dst: lw.reg(in.Dst), Aux: uint8(in.SReg)})
	case ir.OpAdd, ir.OpMul, ir.OpShl, ir.OpShr, ir.OpAnd, ir.OpOr, ir.OpXor:
		lw.emit(isa.Instr{Op: intOpcode[in.Op], Dst: lw.reg(in.Dst),
			Aux: w64For(lw.f.TypeOf(in.Dst)),
			Src: [3]isa.Reg{lw.reg(in.Args[0]), lw.reg(in.Args[1]), isa.RZ}})
	case ir.OpSub:
		// rd = a + (-b): negate via IMUL by -1 into scratch, then add.
		wf := w64For(lw.f.TypeOf(in.Dst))
		lw.emit(isa.Instr{Op: isa.IMUL, Dst: regTmp1, Aux: wf,
			Src: [3]isa.Reg{lw.reg(in.Args[1]), isa.RZ, isa.RZ}, HasImm: true, Imm: -1})
		lw.emit(isa.Instr{Op: isa.IADD, Dst: lw.reg(in.Dst), Aux: wf,
			Src: [3]isa.Reg{lw.reg(in.Args[0]), regTmp1, isa.RZ}})
	case ir.OpMin, ir.OpMax:
		aux := w64For(lw.f.TypeOf(in.Dst))
		if in.Op == ir.OpMax {
			aux |= 1
		}
		lw.emit(isa.Instr{Op: isa.IMNMX, Dst: lw.reg(in.Dst), Aux: aux,
			Src: [3]isa.Reg{lw.reg(in.Args[0]), lw.reg(in.Args[1]), isa.RZ}})
	case ir.OpFAdd, ir.OpFMul:
		lw.emit(isa.Instr{Op: floatOpcode[in.Op], Dst: lw.reg(in.Dst),
			Src: [3]isa.Reg{lw.reg(in.Args[0]), lw.reg(in.Args[1]), isa.RZ}})
	case ir.OpFSub:
		// rd = a + (-b) via FMUL by -1.
		lw.emit(isa.Instr{Op: isa.FMUL, Dst: regTmp1,
			Src: [3]isa.Reg{lw.reg(in.Args[1]), isa.RZ, isa.RZ}, HasImm: true,
			Imm: int32(math.Float32bits(-1))})
		lw.emit(isa.Instr{Op: isa.FADD, Dst: lw.reg(in.Dst),
			Src: [3]isa.Reg{lw.reg(in.Args[0]), regTmp1, isa.RZ}})
	case ir.OpFFMA:
		lw.emit(isa.Instr{Op: isa.FFMA, Dst: lw.reg(in.Dst),
			Src: [3]isa.Reg{lw.reg(in.Args[0]), lw.reg(in.Args[1]), lw.reg(in.Args[2])}})
	case ir.OpFRcp, ir.OpFSqrt, ir.OpFExp2, ir.OpFLog2, ir.OpFSin:
		lw.emit(isa.Instr{Op: isa.MUFU, Dst: lw.reg(in.Dst), Aux: uint8(mufuFn[in.Op]),
			Src: [3]isa.Reg{lw.reg(in.Args[0]), isa.RZ, isa.RZ}})
	case ir.OpI2F:
		lw.emit(isa.Instr{Op: isa.I2F, Dst: lw.reg(in.Dst),
			Src: [3]isa.Reg{lw.reg(in.Args[0]), isa.RZ, isa.RZ}})
	case ir.OpF2I:
		lw.emit(isa.Instr{Op: isa.F2I, Dst: lw.reg(in.Dst),
			Src: [3]isa.Reg{lw.reg(in.Args[0]), isa.RZ, isa.RZ}})
	case ir.OpICmp:
		lw.emit(isa.Instr{Op: isa.SETP, Dst: isa.Reg(lw.pred(in.Dst)), Aux: uint8(in.Cmp),
			Src: [3]isa.Reg{lw.reg(in.Args[0]), lw.reg(in.Args[1]), isa.RZ}})
	case ir.OpFCmp:
		lw.emit(isa.Instr{Op: isa.FSETP, Dst: isa.Reg(lw.pred(in.Dst)), Aux: uint8(in.Cmp),
			Src: [3]isa.Reg{lw.reg(in.Args[0]), lw.reg(in.Args[1]), isa.RZ}})
	case ir.OpSelect:
		hint := lw.hintFor(blk.ID, idx, 0)
		lw.emit(isa.Instr{Op: isa.SEL, Dst: lw.reg(in.Dst),
			Aux:  uint8(lw.pred(in.Args[0])) | w64For(lw.f.TypeOf(in.Dst)),
			Src:  [3]isa.Reg{lw.reg(in.Args[1]), lw.reg(in.Args[2]), isa.RZ},
			Hint: hint})
	case ir.OpCopy:
		if f.TypeOf(in.Dst).Kind == ir.KindBool {
			return fmt.Errorf("compiler: %s: bool copies are not supported (restructure with Select)", f.Name)
		}
		hint := lw.hintFor(blk.ID, idx, 0)
		lw.emit(isa.Instr{Op: isa.MOV, Dst: lw.reg(in.Dst),
			Aux: w64For(lw.f.TypeOf(in.Dst)),
			Src: [3]isa.Reg{lw.reg(in.Args[0]), isa.RZ, isa.RZ}, Hint: hint})
	case ir.OpGEP:
		rd, rp := lw.reg(in.Dst), lw.reg(in.Args[0])
		hint := lw.hintFor(blk.ID, idx, 0)
		if in.Off > math.MaxInt32 || in.Off < math.MinInt32 {
			return fmt.Errorf("compiler: %s: GEP offset %d exceeds immediate", f.Name, in.Off)
		}
		if in.Args[1] == ir.NoValue {
			lw.emit(isa.Instr{Op: isa.IADD, Dst: rd, Aux: isa.AuxW64,
				Src:    [3]isa.Reg{rp, isa.RZ, isa.RZ},
				HasImm: true, Imm: int32(in.Off), Hint: hint})
			break
		}
		ri := lw.reg(in.Args[1])
		scaled := ri
		if in.Scale != 1 {
			scaled = regTmp1
			if in.Scale&(in.Scale-1) == 0 {
				lw.emit(isa.Instr{Op: isa.SHL, Dst: scaled, Aux: isa.AuxW64,
					Src:    [3]isa.Reg{ri, isa.RZ, isa.RZ},
					HasImm: true, Imm: int32(log2(in.Scale))})
			} else {
				lw.emit(isa.Instr{Op: isa.IMUL, Dst: scaled, Aux: isa.AuxW64,
					Src:    [3]isa.Reg{ri, isa.RZ, isa.RZ},
					HasImm: true, Imm: int32(in.Scale)})
			}
		}
		if in.Off != 0 {
			lw.emit(isa.Instr{Op: isa.IADD3, Dst: rd, Aux: isa.AuxW64,
				Src:    [3]isa.Reg{rp, scaled, isa.RZ},
				HasImm: true, Imm: int32(in.Off), Hint: hint})
		} else {
			lw.emit(isa.Instr{Op: isa.IADD, Dst: rd, Aux: isa.AuxW64,
				Src: [3]isa.Reg{rp, scaled, isa.RZ}, Hint: hint})
		}
	case ir.OpLoad:
		space := f.TypeOf(in.Args[0]).Space
		ops, ok := memOpcode[space]
		if !ok {
			return fmt.Errorf("compiler: %s: load from space %s", f.Name, space)
		}
		lw.emit(isa.Instr{Op: ops[0], Dst: lw.reg(in.Dst),
			Src: [3]isa.Reg{lw.reg(in.Args[0]), isa.RZ, isa.RZ},
			Imm: int32(in.Off), Aux: accAux(f.TypeOf(in.Dst), true)})
	case ir.OpStore:
		space := f.TypeOf(in.Args[0]).Space
		ops, ok := memOpcode[space]
		if !ok {
			return fmt.Errorf("compiler: %s: store to space %s", f.Name, space)
		}
		lw.emit(isa.Instr{Op: ops[1], Dst: isa.RZ,
			Src: [3]isa.Reg{lw.reg(in.Args[0]), lw.reg(in.Args[1]), isa.RZ},
			Imm: int32(in.Off), Aux: accAux(f.TypeOf(in.Args[1]), false)})
	case ir.OpAlloca, ir.OpShared:
		// Materialised in the prologue.
	case ir.OpMalloc:
		lw.emit(isa.Instr{Op: isa.MALLOC, Dst: lw.reg(in.Dst),
			Src: [3]isa.Reg{lw.reg(in.Args[0]), isa.RZ, isa.RZ}})
	case ir.OpFree:
		r := lw.reg(in.Args[0])
		lw.emit(isa.Instr{Op: isa.FREE, Dst: isa.RZ, Src: [3]isa.Reg{r, isa.RZ, isa.RZ}})
		if lw.mode == ModeLMI {
			// "The LMI compiler pass inserts instructions to nullify a
			// pointer's extent field immediately after a free()" (§VIII).
			lw.nullifyExtent(r)
		}
	case ir.OpInvalidate:
		if lw.mode == ModeLMI {
			lw.nullifyExtent(lw.reg(in.Args[0]))
		}
	case ir.OpAtomicAdd:
		var op isa.Opcode
		switch f.TypeOf(in.Args[0]).Space {
		case isa.SpaceGlobal:
			op = isa.ATOMG
		case isa.SpaceShared:
			op = isa.ATOMS
		default:
			return fmt.Errorf("compiler: %s: atomics supported in global and shared memory only", f.Name)
		}
		lw.emit(isa.Instr{Op: op, Dst: lw.reg(in.Dst),
			Src: [3]isa.Reg{lw.reg(in.Args[0]), lw.reg(in.Args[1]), isa.RZ},
			Imm: int32(in.Off), Aux: 2})
	case ir.OpBarrier:
		lw.emit(isa.Instr{Op: isa.BAR})
	case ir.OpPtrToInt, ir.OpIntToPtr:
		// Reachable only under ModeBase (ModeLMI rejected earlier).
		lw.emit(isa.Instr{Op: isa.MOV, Dst: lw.reg(in.Dst), Aux: isa.AuxW64,
			Src: [3]isa.Reg{lw.reg(in.Args[0]), isa.RZ, isa.RZ}})
	case ir.OpBr:
		lw.emit(isa.Instr{Op: isa.BRA, Dst: isa.RZ, Target: int32(in.Target)})
	case ir.OpCondBr:
		p := lw.pred(in.Args[0])
		lw.emit(isa.Instr{Op: isa.SSY, Dst: isa.RZ, Target: int32(in.Join)})
		lw.emitG(isa.Instr{Op: isa.BRA, Dst: isa.RZ, Target: int32(in.Then)}, p, false)
		lw.emit(isa.Instr{Op: isa.BRA, Dst: isa.RZ, Target: int32(in.Else)})
	case ir.OpRet:
		lw.emit(isa.Instr{Op: isa.EXIT})
	default:
		return fmt.Errorf("compiler: %s: unhandled IR op %s", f.Name, in.Op)
	}
	return nil
}

func log2(x uint64) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}
