package compiler

import (
	"strings"
	"testing"

	"lmi/internal/ir"
	"lmi/internal/isa"
)

func TestOptimizeShrinksGeneratedCode(t *testing.T) {
	// A loop kernel: constant trip counts and Var copies give the
	// optimizer immediate-folding and self-copy opportunities.
	b := ir.NewBuilder("shrink")
	out := b.Param(ir.PtrGlobal)
	acc := b.Var(b.ConstI(ir.I32, 0))
	b.For(b.ConstI(ir.I32, 16), func(i ir.Value) {
		b.Assign(acc, b.Add(acc, b.Mul(i, b.ConstI(ir.I32, 3))))
	})
	b.Store(b.GEP(out, b.GlobalTID(), 4, 0), acc, 0)
	f := b.MustFinish()
	prog, err := Compile(f, ModeLMI)
	if err != nil {
		t.Fatal(err)
	}
	opt := Optimize(prog)
	if err := opt.Validate(); err != nil {
		t.Fatalf("optimized program invalid: %v", err)
	}
	if len(opt.Instrs) >= len(prog.Instrs) {
		t.Errorf("optimizer removed nothing: %d -> %d", len(prog.Instrs), len(opt.Instrs))
	}
	// Safety-relevant structure is preserved: same number of hinted
	// pointer operations, same memory instructions.
	if opt.CountHinted() != prog.CountHinted() {
		t.Errorf("optimizer changed hint count: %d -> %d", prog.CountHinted(), opt.CountHinted())
	}
	count := func(p *isa.Program, pred func(*isa.Instr) bool) int {
		n := 0
		for i := range p.Instrs {
			if pred(&p.Instrs[i]) {
				n++
			}
		}
		return n
	}
	isMem := func(in *isa.Instr) bool { return in.Op.IsMemory() }
	if count(opt, isMem) != count(prog, isMem) {
		t.Error("optimizer changed memory instruction count")
	}
}

func TestOptimizeFoldsImmediates(t *testing.T) {
	b := ir.NewBuilder("fold")
	out := b.Param(ir.PtrGlobal)
	x := b.Add(b.GlobalTID(), b.ConstI(ir.I32, 41))
	b.Store(out, x, 0)
	f := b.MustFinish()
	prog, _ := Compile(f, ModeBase)
	opt := Optimize(prog)
	// The constant 41 must be folded into the IADD. (The MOV itself may
	// survive when its register is reused by other definitions; dead-move
	// elimination is global-read conservative.)
	var folded bool
	for i := range opt.Instrs {
		in := &opt.Instrs[i]
		if in.Op == isa.IADD && in.HasImm && in.Imm == 41 {
			folded = true
		}
	}
	if !folded {
		t.Errorf("immediate not folded:\n%s", opt.Disassemble())
	}
}

func TestOptimizeKeepsHintedMoves(t *testing.T) {
	// A pointer copy is an OCU-verified move; the optimizer must not
	// remove it even when it looks like a plain register copy.
	b := ir.NewBuilder("ptrcopy")
	out := b.Param(ir.PtrGlobal)
	c := b.Var(out) // pointer copy -> hinted MOV
	b.Store(c, b.ConstI(ir.I32, 7), 0)
	f := b.MustFinish()
	prog, _ := Compile(f, ModeLMI)
	opt := Optimize(prog)
	if opt.CountHinted() != prog.CountHinted() {
		t.Errorf("hinted move removed: %d -> %d", prog.CountHinted(), opt.CountHinted())
	}
}

func TestOptimizeRemapsLoopTargets(t *testing.T) {
	b := ir.NewBuilder("loopopt")
	out := b.Param(ir.PtrGlobal)
	acc := b.Var(b.ConstI(ir.I32, 0))
	b.For(b.ConstI(ir.I32, 10), func(i ir.Value) {
		b.Assign(acc, b.Add(acc, i))
	})
	b.Store(out, acc, 0)
	f := b.MustFinish()
	prog, _ := Compile(f, ModeLMI)
	opt := Optimize(prog)
	if err := opt.Validate(); err != nil {
		t.Fatalf("invalid after remap: %v\n%s", err, opt.Disassemble())
	}
	// Branch targets must land on real instructions (no BRA pointing at
	// a TRAP or past the end — Validate covers range; also check the
	// loop still has a backward branch).
	backward := false
	for i := range opt.Instrs {
		in := &opt.Instrs[i]
		if in.Op == isa.BRA && int(in.Target) <= i {
			backward = true
		}
	}
	if !backward {
		t.Errorf("loop back-edge lost:\n%s", opt.Disassemble())
	}
}

func TestOptimizeDropsSelfCopies(t *testing.T) {
	// b.Var(x) often compiles to MOV Rn, Rn when the allocator assigns
	// both values the same register.
	b := ir.NewBuilder("selfcopy")
	out := b.Param(ir.PtrGlobal)
	v := b.Var(b.ConstI(ir.I32, 5))
	b.Store(out, v, 0)
	f := b.MustFinish()
	prog, _ := Compile(f, ModeBase)
	opt := Optimize(prog)
	for i := range opt.Instrs {
		in := &opt.Instrs[i]
		if in.Op == isa.MOV && !in.HasImm && in.Dst == in.Src[0] && !in.Hint.A {
			t.Errorf("self-copy survived at %d:\n%s", i, opt.Disassemble())
		}
	}
	if !strings.Contains(opt.Disassemble(), "STG") {
		t.Error("store lost")
	}
}
