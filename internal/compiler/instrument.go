package compiler

import (
	"lmi/internal/core"
	"lmi/internal/isa"
)

// TrapSpatial is the TRAP immediate raised by software bounds checks.
const TrapSpatial = 1

// instrPred is the predicate register reserved for instrumentation
// sequences (the register allocator hands out P0..P5 only).
const instrPred = isa.PredReg(6)

// rewrite expands a program by inserting instruction sequences before and
// after selected instructions, remapping all branch/SSY targets so control
// transfers land at the start of an instruction's inserted prologue.
func rewrite(p *isa.Program, visit func(in *isa.Instr) (before, after []isa.Instr)) *isa.Program {
	newIdx := make([]int32, len(p.Instrs)+1)
	var out []isa.Instr
	for i := range p.Instrs {
		in := p.Instrs[i]
		before, after := visit(&in)
		newIdx[i] = int32(len(out))
		out = append(out, before...)
		out = append(out, in)
		out = append(out, after...)
	}
	newIdx[len(p.Instrs)] = int32(len(out))
	for i := range out {
		if out[i].Op == isa.BRA || out[i].Op == isa.SSY {
			out[i].Target = newIdx[out[i].Target]
		}
	}
	q := *p
	q.Instrs = out
	return &q
}

func pt(in isa.Instr) isa.Instr {
	in.Pred = isa.PT
	if in.Src == ([3]isa.Reg{}) {
		in.Src = [3]isa.Reg{isa.RZ, isa.RZ, isa.RZ}
	}
	return in
}

// InstrumentBaggy implements the software Baggy Bounds baseline (§X-A):
// "We evaluate Baggy Bounds by injecting bounds-checking SASS instructions
// after each pointer operation." The input program must be compiled under
// ModeLMI (so allocations are 2^n-aligned, pointers are tagged, and the A/S
// hints mark the pointer operations); the inserted sequence performs in
// software exactly the check LMI's OCU performs in hardware:
//
//	MOV  T2, <ptr-in>        (saved before the operation)
//	XOR  T0, T2, <out>       changed bits
//	SHR  T1, T2, #59         extent
//	IADD T1, T1, #7          log2(size class)
//	SHR  T0, T0, T1          keep changes above the modifiable field
//	SETP.NE P6, T0, RZ
//	@P6 TRAP #spatial
//
// Seven dynamic instructions per pointer operation, with no metadata
// memory access (the 64-bit variant of Baggy Bounds, per the paper's
// Table II footnote).
func InstrumentBaggy(p *isa.Program) *isa.Program {
	return rewrite(p, func(in *isa.Instr) ([]isa.Instr, []isa.Instr) {
		if !in.Hint.A {
			return nil, nil
		}
		src := in.Src[in.Hint.PointerOperand()]
		out := in.Dst
		before := []isa.Instr{
			pt(isa.Instr{Op: isa.MOV, Dst: regTmp2, Aux: isa.AuxW64,
				Src: [3]isa.Reg{src, isa.RZ, isa.RZ}}),
		}
		after := []isa.Instr{
			pt(isa.Instr{Op: isa.XOR, Dst: regTmp0, Aux: isa.AuxW64,
				Src: [3]isa.Reg{regTmp2, out, isa.RZ}}),
			pt(isa.Instr{Op: isa.SHR, Dst: regTmp1, Aux: isa.AuxW64,
				Src:    [3]isa.Reg{regTmp2, isa.RZ, isa.RZ},
				HasImm: true, Imm: int32(core.ExtentShift)}),
			pt(isa.Instr{Op: isa.IADD, Dst: regTmp1, Aux: isa.AuxW64,
				Src:    [3]isa.Reg{regTmp1, isa.RZ, isa.RZ},
				HasImm: true, Imm: int32(core.DefaultMinShift - 1)}),
			pt(isa.Instr{Op: isa.SHR, Dst: regTmp0, Aux: isa.AuxW64,
				Src: [3]isa.Reg{regTmp0, regTmp1, isa.RZ}}),
			pt(isa.Instr{Op: isa.SETP, Dst: isa.Reg(instrPred), Aux: uint8(isa.CmpNE),
				Src: [3]isa.Reg{regTmp0, isa.RZ, isa.RZ}}),
			{Op: isa.TRAP, Imm: TrapSpatial, Pred: instrPred,
				Src: [3]isa.Reg{isa.RZ, isa.RZ, isa.RZ}},
		}
		// The A hint has been consumed by the software check; clear it so
		// the program runs on baseline hardware (no OCU).
		in.Hint = isa.Hint{}
		return before, after
	})
}

// DBIOptions sizes the dynamic-binary-instrumentation cost model.
type DBIOptions struct {
	// SaveRegs is the number of registers spilled to (and reloaded from)
	// thread-local memory around each injected call, modelling the NVBit
	// trampoline's register save/restore.
	SaveRegs int
	// CheckALU is the number of ALU instructions in the injected
	// bounds-checking function body.
	CheckALU int
	// ShadowLoads is the number of global-memory reads of checker
	// metadata per injected call (allocation-table lookups).
	ShadowLoads int
	// CheckIntALU selects whether integer ALU instructions are
	// instrumented in addition to loads/stores. The LMI DBI
	// implementation must conservatively check pointer-producing
	// arithmetic, which is why its check count far exceeds the LD/ST
	// count (the paper reports check/LDST ratios of 67.1 for gaussian and
	// 28.1 for swin); memcheck confines itself to memory instructions.
	CheckIntALU bool
}

// LMIDBIOptions models the paper's NVBit-based LMI implementation (§X-B).
var LMIDBIOptions = DBIOptions{SaveRegs: 15, CheckALU: 31, ShadowLoads: 0, CheckIntALU: true}

// MemcheckOptions models Compute Sanitizer's memcheck tool (§X-B): a
// tripwire checker confined to LD/ST instructions, with allocation-table
// lookups in memory.
var MemcheckOptions = DBIOptions{SaveRegs: 29, CheckALU: 55, ShadowLoads: 2, CheckIntALU: false}

// dbiScratchLocal is the thread-local byte offset of the trampoline's
// register-save area (below the stack frame).
const dbiScratchLocal = 0x100

// dbiShadowBase is the global address of the checker's allocation table.
const dbiShadowBase = 0x0F00_0000

// InstrumentDBI splices a dynamic-binary-instrumentation call sequence
// around every instrumented instruction. The sequence is semantically a
// no-op (it touches only scratch registers and scratch memory) but its
// cost — register spills to local memory, checker ALU work, and shadow
// table loads — is executed cycle by cycle by the simulator, reproducing
// how DBI overhead is dominated by the injected instructions rather than
// JIT compilation (§XI-B).
func InstrumentDBI(p *isa.Program, opts DBIOptions) *isa.Program {
	return rewrite(p, func(in *isa.Instr) ([]isa.Instr, []isa.Instr) {
		instrumented := in.Op.IsMemory() && in.Op != isa.MALLOC && in.Op != isa.FREE
		if opts.CheckIntALU && in.Op.IsInt() {
			instrumented = true
		}
		if !instrumented {
			return nil, nil
		}
		var before, after []isa.Instr
		for i := 0; i < opts.SaveRegs; i++ {
			before = append(before, pt(isa.Instr{Op: isa.STL, Dst: isa.RZ,
				Src: [3]isa.Reg{isa.RZ, regTmp0, isa.RZ},
				Imm: int32(dbiScratchLocal + 8*i), Aux: 3}))
			after = append(after, pt(isa.Instr{Op: isa.LDL, Dst: regTmp0,
				Src: [3]isa.Reg{isa.RZ, isa.RZ, isa.RZ},
				Imm: int32(dbiScratchLocal + 8*i), Aux: 3}))
		}
		for i := 0; i < opts.ShadowLoads; i++ {
			before = append(before,
				pt(isa.Instr{Op: isa.MOV, Dst: regTmp1, HasImm: true,
					Imm: int32(dbiShadowBase + 64*i)}),
				pt(isa.Instr{Op: isa.LDG, Dst: regTmp1,
					Src: [3]isa.Reg{regTmp1, isa.RZ, isa.RZ}, Aux: 3}))
		}
		for i := 0; i < opts.CheckALU; i++ {
			op := isa.XOR
			if i%3 == 1 {
				op = isa.IADD
			} else if i%3 == 2 {
				op = isa.AND
			}
			before = append(before, pt(isa.Instr{Op: op, Dst: regTmp0, Aux: isa.AuxW64,
				Src: [3]isa.Reg{regTmp0, regTmp1, isa.RZ}}))
		}
		// The checker's verdict: compare and (never, in a correct run)
		// trap.
		before = append(before,
			pt(isa.Instr{Op: isa.SETP, Dst: isa.Reg(instrPred), Aux: uint8(isa.CmpNE),
				Src: [3]isa.Reg{regTmp0, regTmp0, isa.RZ}}),
			isa.Instr{Op: isa.TRAP, Imm: TrapSpatial, Pred: instrPred,
				Src: [3]isa.Reg{isa.RZ, isa.RZ, isa.RZ}})
		return before, after
	})
}

// CheckInstructionCounts reports the static number of instrumented checks
// and memory instructions in a program — the check/LDST ratio the paper
// uses to explain DBI performance variability (§XI-B).
func CheckInstructionCounts(p *isa.Program) (checks, ldst int) {
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op.IsMemory() && in.Op != isa.MALLOC && in.Op != isa.FREE {
			ldst++
		}
		if in.Hint.A {
			checks++
		}
	}
	return checks, ldst
}
