// Integration between the compiler and the static linter lives in an
// external test package: lint imports compiler, so an in-package test
// would be an import cycle.
package compiler_test

import (
	"testing"

	"lmi/internal/compiler"
	"lmi/internal/lint"
	"lmi/internal/workloads"
)

// TestCompilerOutputLintsClean is the compiler-side half of the
// contract: for a sample of real workloads, the lowering plus the
// source map it emits must satisfy the linter's register-level,
// IR-level, and hint-bit cross-checks in both modes.
func TestCompilerOutputLintsClean(t *testing.T) {
	for _, name := range []string{"bfs", "sc_gpu", "gaussian"} {
		s := workloads.ByName(name)
		if s == nil {
			t.Fatalf("%s: unknown workload", name)
		}
		f, err := s.Kernel()
		if err != nil {
			t.Fatalf("%s: kernel: %v", name, err)
		}
		for _, mode := range []compiler.Mode{compiler.ModeBase, compiler.ModeLMI} {
			p, src, err := compiler.CompileWithSourceMap(f, mode)
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", name, mode, err)
			}
			if diags := lint.CheckWithSource(p, mode, src); len(diags) != 0 {
				for _, d := range diags {
					t.Errorf("%s/%s: %s", name, mode, d)
				}
			}
		}
	}
}

// TestInstrumentationViolatesContract documents that software
// instrumentation (Baggy bounds checks running on baseline hardware)
// intentionally breaks the LMI microcode contract: its injected check
// sequences manipulate addresses unhinted. The linter must see that —
// if it ever stops flagging instrumented programs, its address tracing
// has gone soft.
func TestInstrumentationViolatesContract(t *testing.T) {
	s := workloads.ByName("bfs")
	if s == nil {
		t.Fatal("unknown workload bfs")
	}
	f, err := s.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	p, err := compiler.Compile(f, compiler.ModeBase)
	if err != nil {
		t.Fatal(err)
	}
	inst := compiler.InstrumentBaggy(p)
	if diags := lint.Check(inst, compiler.ModeLMI); len(diags) == 0 {
		t.Fatal("Baggy-instrumented program lints clean under the LMI contract; the linter's tracing is too permissive")
	}
}
