// Package compiler lowers IR kernels to the SASS-like ISA and implements
// the LMI compiler support described in the paper:
//
//   - the pointer-operand analysis pass that identifies which instructions
//     perform pointer arithmetic and which operand carries the pointer
//     (§VI-A, Fig. 8), delivered to the backend as metadata;
//   - rejection of inttoptr/ptrtoint casts and of pointers stored to
//     memory, preserving the Correct-by-Construction invariant (§VI-A,
//     §XII-B);
//   - 2^n-aligned stack-frame layout and in-register extent tagging of
//     stack, shared, and heap pointers (§V-B);
//   - extent nullification after free() and at scope exit (§VIII);
//   - hint-bit emission into the reserved microcode field (§VI-B);
//   - instrumentation passes modelling the software baselines: Baggy
//     Bounds check injection, the LMI DBI implementation, and a
//     memcheck-style tripwire (§X-A, §X-B).
package compiler

import (
	"fmt"

	"lmi/internal/ir"
)

// PtrFact describes one instruction that manipulates a pointer value and
// therefore needs OCU verification.
type PtrFact struct {
	// Block and Index locate the IR instruction.
	Block ir.BlockID
	Index int
	// Operand is the argument index holding the pointer (the S hint).
	Operand int
}

// Facts is the metadata the front-end analysis hands to the backend
// ("information gathered from the LLVM IR analysis is passed as metadata
// to the backend", §VI-A).
type Facts struct {
	// PtrArith lists pointer-arithmetic and pointer-move instructions
	// (GEP and pointer Copy) with their pointer operand index.
	PtrArith []PtrFact
	// Casts lists inttoptr/ptrtoint instructions (locations only).
	Casts []PtrFact
	// PtrStores lists stores whose stored value is a pointer, and loads
	// producing a pointer — both restricted under LMI ("LMI restricts the
	// storage of pointers in memory", §VI-A).
	PtrStores []PtrFact
}

// Analyze runs the pointer-operand analysis over a verified function.
//
// Because the IR is typed and LMI bans pointer<->integer casts, the
// analysis is a direct type walk: an instruction manipulates a pointer
// exactly when one of its operands has pointer type. This mirrors the
// paper's LLVM pass (Fig. 8), which inspects operand types of arithmetic
// instructions.
func Analyze(f *ir.Func) (*Facts, error) {
	if err := ir.Verify(f); err != nil {
		return nil, err
	}
	facts := &Facts{}
	for _, blk := range f.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			loc := PtrFact{Block: blk.ID, Index: i}
			switch in.Op {
			case ir.OpGEP:
				loc.Operand = 0
				facts.PtrArith = append(facts.PtrArith, loc)
			case ir.OpCopy:
				if f.TypeOf(in.Dst).IsPtr() {
					loc.Operand = 0
					facts.PtrArith = append(facts.PtrArith, loc)
				}
			case ir.OpSelect:
				if f.TypeOf(in.Dst).IsPtr() {
					// A pointer select produces a pointer from one of two
					// pointer operands; the backend lowers it to a
					// verified move of each arm. Record operand 1 (the
					// first pointer arm).
					loc.Operand = 1
					facts.PtrArith = append(facts.PtrArith, loc)
				}
			case ir.OpPtrToInt, ir.OpIntToPtr:
				facts.Casts = append(facts.Casts, loc)
			case ir.OpStore:
				if f.TypeOf(in.Args[1]).IsPtr() {
					facts.PtrStores = append(facts.PtrStores, loc)
				}
			case ir.OpLoad:
				if f.TypeOf(in.Dst).IsPtr() {
					facts.PtrStores = append(facts.PtrStores, loc)
				}
			}
		}
	}
	return facts, nil
}

// CheckLMIRestrictions returns an error if the function violates the LMI
// compile-time rules: no int<->ptr casts (a compiler error per §XII-B) and
// no pointers stored to or loaded from memory (§VI-A).
func CheckLMIRestrictions(f *ir.Func, facts *Facts) error {
	if len(facts.Casts) > 0 {
		c := facts.Casts[0]
		op := f.Blocks[c.Block].Instrs[c.Index].Op
		return fmt.Errorf("compiler: %s: b%d[%d]: %s is forbidden under LMI (correct-by-construction, §XII-B)",
			f.Name, c.Block, c.Index, op)
	}
	if len(facts.PtrStores) > 0 {
		c := facts.PtrStores[0]
		return fmt.Errorf("compiler: %s: b%d[%d]: storing/loading pointers through memory is restricted under LMI (§VI-A)",
			f.Name, c.Block, c.Index)
	}
	return nil
}
