package gpu

import (
	"errors"
	"testing"

	"lmi/internal/compiler"
	"lmi/internal/core"
	"lmi/internal/ir"
	"lmi/internal/isa"
	"lmi/internal/safety"
	"lmi/internal/sim"
)

func saxpyIR() *ir.Func {
	b := ir.NewBuilder("saxpy")
	X := b.Param(ir.PtrGlobal)
	Y := b.Param(ir.PtrGlobal)
	n := b.Param(ir.I32)
	i := b.GlobalTID()
	b.If(b.ICmp(isa.CmpLT, i, n), func() {
		x := b.Load(ir.F32, b.GEP(X, i, 4, 0), 0)
		y := b.Load(ir.F32, b.GEP(Y, i, 4, 0), 0)
		b.Store(b.GEP(Y, i, 4, 0), b.FFMA(b.ConstF(2), x, y), 0)
	}, nil)
	return b.MustFinish()
}

func TestContextEndToEnd(t *testing.T) {
	ctx, err := NewLMIContext(2)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Mode() != compiler.ModeLMI || ctx.Device() == nil {
		t.Error("context wiring")
	}
	const n = 500
	x, err := Alloc[float32](ctx, n)
	if err != nil {
		t.Fatal(err)
	}
	y, err := Alloc[float32](ctx, n)
	if err != nil {
		t.Fatal(err)
	}
	hx := make([]float32, n)
	hy := make([]float32, n)
	for i := range hx {
		hx[i] = float32(i)
		hy[i] = float32(2 * i)
	}
	if err := x.CopyIn(hx); err != nil {
		t.Fatal(err)
	}
	if err := y.CopyIn(hy); err != nil {
		t.Fatal(err)
	}
	k, err := ctx.Compile(saxpyIR())
	if err != nil {
		t.Fatal(err)
	}
	if k.Program().CountHinted() == 0 {
		t.Error("LMI context must compile with hints")
	}
	st, err := ctx.Launch(k, Dim(8), Dim(128), x, y, I32(n))
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles == 0 {
		t.Error("no cycles")
	}
	out, err := y.CopyOut()
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != float32(4*i) {
			t.Fatalf("y[%d] = %v, want %v", i, out[i], float32(4*i))
		}
	}
	if err := x.Free(); err != nil {
		t.Fatal(err)
	}
	if err := x.Free(); err == nil {
		t.Error("double free not reported")
	}
	if err := x.CopyIn(hx); err == nil {
		t.Error("CopyIn after free allowed")
	}
	if _, err := x.CopyOut(); err == nil {
		t.Error("CopyOut after free allowed")
	}
}

func TestLaunchSafetyError(t *testing.T) {
	ctx, err := NewLMIContext(1)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := Alloc[float32](ctx, 256)
	if err != nil {
		t.Fatal(err)
	}
	k, err := ctx.Compile(saxpyIR())
	if err != nil {
		t.Fatal(err)
	}
	// Lie about the length: thread 256.. writes past the buffer.
	_, err = ctx.Launch(k, Dim(9), Dim(128), buf, buf, I32(1100))
	var sf *SafetyError
	if !errors.As(err, &sf) {
		t.Fatalf("want *SafetyError, got %v", err)
	}
	if len(sf.Stats.Faults) == 0 || sf.Error() == "" {
		t.Error("empty safety error")
	}
	if (&SafetyError{Stats: &sim.KernelStats{}}).Error() == "" {
		t.Error("degenerate safety error message")
	}
}

func TestBufferScalarTypes(t *testing.T) {
	ctx, err := NewBaselineContext(1)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Mode() != compiler.ModeBase {
		t.Error("baseline mode")
	}
	i64buf, err := Alloc[int64](ctx, 8)
	if err != nil {
		t.Fatal(err)
	}
	want64 := []int64{-1, 2, 1 << 40, -(1 << 50), 0, 7, -9, 42}
	if err := i64buf.CopyIn(want64); err != nil {
		t.Fatal(err)
	}
	got64, _ := i64buf.CopyOut()
	for i := range want64 {
		if got64[i] != want64[i] {
			t.Fatalf("i64[%d] = %d", i, got64[i])
		}
	}
	u32buf, _ := Alloc[uint32](ctx, 4)
	if err := u32buf.CopyIn([]uint32{0xFFFFFFFF, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got32, _ := u32buf.CopyOut()
	if got32[0] != 0xFFFFFFFF || u32buf.Len() != 4 {
		t.Error("u32 round trip")
	}
	if err := u32buf.CopyIn(make([]uint32, 5)); err == nil {
		t.Error("oversized CopyIn accepted")
	}
	if _, err := Alloc[int32](ctx, 0); err == nil {
		t.Error("zero-length alloc accepted")
	}
}

func TestContextWithGPUShield(t *testing.T) {
	ctx, err := NewContext(sim.ScaledConfig(1), safety.NewGPUShield())
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Mode() != compiler.ModeBase {
		t.Error("GPUShield must compile ModeBase")
	}
	buf, _ := Alloc[int32](ctx, 64)
	// The tagged pointer still round-trips host copies.
	if err := buf.CopyIn([]int32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	out, _ := buf.CopyOut()
	if out[0] != 1 || out[2] != 3 {
		t.Error("round trip under GPUShield tagging")
	}
	// LMI contexts hand out extent-tagged pointers.
	lctx, _ := NewLMIContext(1)
	lbuf, _ := Alloc[int32](lctx, 64)
	if !core.Pointer(lbuf.Ptr()).Valid() {
		t.Error("LMI buffer pointer not tagged")
	}
}

func TestDims(t *testing.T) {
	if Dim(5) != (Dims{X: 5, Y: 1}) || Dim2(3, 4) != (Dims{X: 3, Y: 4}) {
		t.Error("dims")
	}
	if I32(-1).argWord() != 0xFFFFFFFF || U64(1<<60).argWord() != 1<<60 {
		t.Error("arg words")
	}
}

// crashingMech panics inside the access hook the simulator calls
// mid-launch — the runtime API must contain it as a typed error.
type crashingMech struct{ sim.Baseline }

func (crashingMech) CheckAccess(sim.Access) (uint64, uint64, *core.Fault) {
	panic("mechanism bug: CheckAccess")
}

// TestLaunchContainsMechanismPanic: no panic escapes the gpu API even
// when a mechanism hook blows up mid-kernel.
func TestLaunchContainsMechanismPanic(t *testing.T) {
	ctx, err := NewContext(sim.ScaledConfig(1), crashingMech{})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := Alloc[int32](ctx, 64)
	if err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder("store1")
	out := b.Param(ir.PtrGlobal)
	b.Store(b.GEP(out, b.GlobalTID(), 4, 0), b.ConstI(ir.I32, 1), 0)
	k, err := ctx.Compile(b.Finalize())
	if err != nil {
		t.Fatal(err)
	}
	st, err := ctx.Launch(k, Dim(1), Dim(32), buf)
	var pe *sim.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *sim.PanicError", err)
	}
	if st != nil {
		t.Errorf("partial stats after panic: %+v", st)
	}
}
