// Package gpu is the high-level runtime veneer of the library — the
// CUDA-runtime-shaped API a downstream user holds: contexts, typed
// device buffers, compiled kernels, launches, and safety faults as Go
// errors. Everything below it (compiler, simulator, mechanisms) remains
// directly accessible for users who need the knobs.
//
//	ctx, _ := gpu.NewLMIContext(4)
//	a, _ := gpu.Alloc[float32](ctx, 1024)
//	defer a.Free()
//	a.CopyIn(host)
//	k, _ := ctx.Compile(kernelIR)
//	stats, err := ctx.Launch(k, gpu.Dim(8), gpu.Dim(128), a, gpu.I32(1024))
//	var sf *gpu.SafetyError
//	if errors.As(err, &sf) { ... } // the hardware caught a violation
package gpu

import (
	"fmt"
	"math"

	"lmi/internal/compiler"
	"lmi/internal/ir"
	"lmi/internal/isa"
	"lmi/internal/safety"
	"lmi/internal/sim"
)

// Scalar is the set of element types device buffers may hold.
type Scalar interface {
	~int32 | ~uint32 | ~float32 | ~int64 | ~uint64
}

// Context owns a simulated device and the compile mode matching its
// safety mechanism.
type Context struct {
	dev  *sim.Device
	mode compiler.Mode
}

// NewContext builds a context over an explicit configuration and
// mechanism. The compile mode is derived from the mechanism: LMI and
// Baggy Bounds need ModeLMI tagging, everything else compiles ModeBase.
func NewContext(cfg sim.Config, mech sim.Mechanism) (*Context, error) {
	dev, err := sim.NewDevice(cfg, mech)
	if err != nil {
		return nil, err
	}
	mode := compiler.ModeBase
	switch mech.(type) {
	case *safety.LMI, *safety.Baggy:
		mode = compiler.ModeLMI
	}
	return &Context{dev: dev, mode: mode}, nil
}

// NewLMIContext builds an LMI-protected context on a GPU scaled to the
// given SM count.
func NewLMIContext(sms int) (*Context, error) {
	return NewContext(sim.ScaledConfig(sms), safety.NewLMI())
}

// NewBaselineContext builds an unprotected context.
func NewBaselineContext(sms int) (*Context, error) {
	return NewContext(sim.ScaledConfig(sms), sim.Baseline{})
}

// Device exposes the underlying simulated device.
func (c *Context) Device() *sim.Device { return c.dev }

// Mode exposes the compile mode the context uses.
func (c *Context) Mode() compiler.Mode { return c.mode }

// Buffer is a typed device allocation.
type Buffer[T Scalar] struct {
	ctx   *Context
	ptr   uint64
	n     int
	freed bool
}

// Alloc reserves a device buffer of n elements of T. Under LMI the
// returned handle wraps an extent-tagged pointer.
func Alloc[T Scalar](ctx *Context, n int) (*Buffer[T], error) {
	if n <= 0 {
		return nil, fmt.Errorf("gpu: non-positive element count %d", n)
	}
	var zero T
	ptr, err := ctx.dev.Malloc(uint64(n) * uint64(sizeOf(zero)))
	if err != nil {
		return nil, err
	}
	return &Buffer[T]{ctx: ctx, ptr: ptr, n: n}, nil
}

func sizeOf[T Scalar](v T) int {
	switch any(v).(type) {
	case int64, uint64:
		return 8
	default:
		return 4
	}
}

// Len returns the element count.
func (b *Buffer[T]) Len() int { return b.n }

// Ptr returns the (tagged) device pointer value — what a kernel
// parameter receives.
func (b *Buffer[T]) Ptr() uint64 { return b.ptr }

// CopyIn writes host elements to the device (at most Len elements).
func (b *Buffer[T]) CopyIn(host []T) error {
	if b.freed {
		return fmt.Errorf("gpu: use of freed buffer")
	}
	if len(host) > b.n {
		return fmt.Errorf("gpu: CopyIn of %d elements into %d-element buffer", len(host), b.n)
	}
	var zero T
	es := sizeOf(zero)
	raw := make([]byte, len(host)*es)
	for i, v := range host {
		putScalar(raw[i*es:], v)
	}
	b.ctx.dev.WriteGlobal(b.ptr, raw)
	return nil
}

// CopyOut reads the whole buffer back to the host.
func (b *Buffer[T]) CopyOut() ([]T, error) {
	if b.freed {
		return nil, fmt.Errorf("gpu: use of freed buffer")
	}
	var zero T
	es := sizeOf(zero)
	raw := b.ctx.dev.ReadGlobal(b.ptr, b.n*es)
	out := make([]T, b.n)
	for i := range out {
		out[i] = getScalar[T](raw[i*es:])
	}
	return out, nil
}

// Free releases the buffer (cudaFree). Double frees surface the
// allocator's fault as an error.
func (b *Buffer[T]) Free() error {
	err := b.ctx.dev.Free(b.ptr)
	b.freed = true
	return err
}

func putScalar[T Scalar](dst []byte, v T) {
	switch x := any(v).(type) {
	case int64:
		put64(dst, uint64(x))
	case uint64:
		put64(dst, x)
	case int32:
		put32(dst, uint32(x))
	case uint32:
		put32(dst, x)
	case float32:
		put32(dst, f32bits(x))
	}
}

func getScalar[T Scalar](src []byte) T {
	var v T
	switch any(v).(type) {
	case int64:
		v = any(int64(get64(src))).(T)
	case uint64:
		v = any(get64(src)).(T)
	case int32:
		v = any(int32(get32(src))).(T)
	case uint32:
		v = any(get32(src)).(T)
	case float32:
		v = any(f32frombits(get32(src))).(T)
	}
	return v
}

// Kernel is a compiled program bound to a context's compile mode.
type Kernel struct {
	prog *isa.Program
}

// Program exposes the compiled ISA program (for disassembly etc.).
func (k *Kernel) Program() *isa.Program { return k.prog }

// Compile lowers an IR kernel under the context's mode.
func (c *Context) Compile(f *ir.Func) (*Kernel, error) {
	prog, err := compiler.Compile(f, c.mode)
	if err != nil {
		return nil, err
	}
	return &Kernel{prog: prog}, nil
}

// Dims is a 2-D launch extent.
type Dims struct{ X, Y int }

// Dim is a 1-D extent.
func Dim(x int) Dims { return Dims{X: x, Y: 1} }

// Dim2 is a 2-D extent.
func Dim2(x, y int) Dims { return Dims{X: x, Y: y} }

// Arg is a launch argument: a *Buffer[T] or a scalar wrapped by I32/U64.
type Arg interface{ argWord() uint64 }

// I32 wraps a 32-bit integer launch argument.
type I32 int32

func (v I32) argWord() uint64 { return uint64(uint32(v)) }

// U64 wraps a raw 64-bit launch argument (e.g. a stale pointer in a
// security test).
type U64 uint64

func (v U64) argWord() uint64 { return uint64(v) }

// argWord implements Arg for buffers.
func (b *Buffer[T]) argWord() uint64 { return b.ptr }

// SafetyError is returned by Launch when the mechanism detected one or
// more memory-safety violations during the kernel.
type SafetyError struct {
	// Stats is the kernel's statistics, including the fault records.
	Stats *sim.KernelStats
}

// Error implements error.
func (e *SafetyError) Error() string {
	if len(e.Stats.Faults) == 0 {
		return "gpu: safety fault"
	}
	return fmt.Sprintf("gpu: %d safety fault(s); first: %s",
		len(e.Stats.Faults), e.Stats.Faults[0].String())
}

// Launch runs a kernel. Grid and block may be 1-D (Dim) or 2-D (Dim2);
// args are buffers and wrapped scalars in parameter order. Detected
// safety violations come back as a *SafetyError (with the stats still
// attached); infrastructure failures come back as plain errors.
func (c *Context) Launch(k *Kernel, grid, block Dims, args ...Arg) (*sim.KernelStats, error) {
	params := make([]uint64, len(args))
	for i, a := range args {
		params[i] = a.argWord()
	}
	st, err := c.dev.Launch2D(k.prog, grid.X, grid.Y, block.X, block.Y, params)
	if err != nil {
		return nil, err
	}
	if len(st.Faults) > 0 {
		return st, &SafetyError{Stats: st}
	}
	return st, nil
}

// Tiny endian helpers (avoiding an encoding/binary import for two
// fixed-width accessors would be false economy; these stay next to their
// scalar switch for readability).
func put32(b []byte, v uint32) {
	_ = b[3]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func put64(b []byte, v uint64) {
	put32(b, uint32(v))
	put32(b[4:], uint32(v>>32))
}

func get32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func get64(b []byte) uint64 {
	return uint64(get32(b)) | uint64(get32(b[4:]))<<32
}

func f32bits(f float32) uint32     { return math.Float32bits(f) }
func f32frombits(u uint32) float32 { return math.Float32frombits(u) }
