package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestGeomean(t *testing.T) {
	if Geomean(nil) != 0 {
		t.Error("Geomean(nil) != 0")
	}
	got := Geomean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("Geomean(1,4) = %v", got)
	}
	if !math.IsNaN(Geomean([]float64{1, -1})) {
		t.Error("Geomean with negative entry should be NaN")
	}
}

func TestGeomeanChecked(t *testing.T) {
	if _, ok := GeomeanChecked(nil); ok {
		t.Error("GeomeanChecked(nil) should not be ok")
	}
	if _, ok := GeomeanChecked([]float64{2, 0, 4}); ok {
		t.Error("GeomeanChecked with zero entry should not be ok")
	}
	if _, ok := GeomeanChecked([]float64{2, -1}); ok {
		t.Error("GeomeanChecked with negative entry should not be ok")
	}
	got, ok := GeomeanChecked([]float64{1, 4})
	if !ok || math.Abs(got-2) > 1e-12 {
		t.Errorf("GeomeanChecked(1,4) = %v, %v", got, ok)
	}
}

func TestMax(t *testing.T) {
	if Max(nil) != 0 {
		t.Error("Max(nil) != 0")
	}
	if got := Max([]float64{3, 7, 2}); got != 7 {
		t.Errorf("Max = %v", got)
	}
}

// Property: geomean lies between min and max for positive inputs.
func TestPropertyGeomeanBounded(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)/256 + 0.01
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := Geomean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf(2, "beta", 3.14159)
	tb.AddRow("short") // padded
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "3.14") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Errorf("want 5 lines, got %d:\n%s", len(lines), out)
	}
}

// NaN cells render as "n/a": undefined summary statistics must not be
// presented as numbers.
func TestTableNaNRendersNA(t *testing.T) {
	tb := NewTable("name", "f64", "f32")
	tb.AddRowf(2, "GEOMEAN", math.NaN(), float32(math.NaN()))
	tb.AddRowf(2, "ok", 1.5, float32(2.5))
	out := tb.String()
	if strings.Contains(out, "NaN") {
		t.Errorf("table leaks NaN:\n%s", out)
	}
	if strings.Count(out, "n/a") != 2 {
		t.Errorf("want two n/a cells:\n%s", out)
	}
	if !strings.Contains(out, "1.50") || !strings.Contains(out, "2.50") {
		t.Errorf("numeric cells mangled:\n%s", out)
	}
}
