// Package stats provides the small statistical and formatting helpers the
// evaluation harness uses: geometric/arithmetic means and plain-text table
// rendering for reproduced figures and tables.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Geomean returns the geometric mean of xs, or 0 for an empty slice.
// Non-positive entries are invalid and yield NaN, matching the usual
// definition; callers normalise ratios so entries are positive.
func Geomean(xs []float64) float64 {
	g, ok := GeomeanChecked(xs)
	if !ok {
		if len(xs) == 0 {
			return 0
		}
		return math.NaN()
	}
	return g
}

// GeomeanChecked returns the geometric mean of xs and whether it is
// defined. ok is false for an empty slice and for any non-positive
// entry — the two cases Geomean silently encodes as 0 and NaN, which
// summary rows must not present as real ratios.
func GeomeanChecked(xs []float64) (float64, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, false
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), true
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Table accumulates rows and renders an aligned plain-text table. It is
// the output format for every reproduced figure and table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each value with %v, floats with prec
// decimal places. NaN floats render as "n/a": an undefined summary
// statistic (e.g. a geomean over invalid ratios) must not be presented
// as a numeric value.
func (t *Table) AddRowf(prec int, cells ...any) {
	ss := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			if math.IsNaN(v) {
				ss[i] = "n/a"
			} else {
				ss[i] = fmt.Sprintf("%.*f", prec, v)
			}
		case float32:
			if math.IsNaN(float64(v)) {
				ss[i] = "n/a"
			} else {
				ss[i] = fmt.Sprintf("%.*f", prec, v)
			}
		default:
			ss[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(ss...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
