package peval_test

import (
	"context"
	"fmt"
	"testing"

	"lmi/internal/fastsim"
	"lmi/internal/isa"
	"lmi/internal/sim"
	"lmi/internal/workloads"
)

// launchOutcome is the safety-functional projection of one launch: the
// output buffer contents, the fault records (location and content, not
// cycle stamps), the halt status, and the safety decisions (pointer
// checks, total extent-check decisions, race findings). Instruction
// and cycle counts are deliberately excluded: the residual is supposed
// to reduce them.
type launchOutcome struct {
	out           []byte
	faults        []string
	halted        bool
	pointerChecks uint64
	ecTotal       uint64
	races         int
}

// launch runs one program on a fresh device and captures the outcome.
func launch(t *testing.T, prog *isa.Program, cfg sim.Config, tier fastsim.Tier, grid, block int, n uint64) launchOutcome {
	t.Helper()
	dev, err := sim.NewDevice(cfg, workloads.NewMechanism(workloads.VariantLMIElide))
	if err != nil {
		t.Fatalf("device: %v", err)
	}
	in, err := dev.Malloc(n * 4)
	if err != nil {
		t.Fatalf("malloc: %v", err)
	}
	out, err := dev.Malloc(n * 4)
	if err != nil {
		t.Fatalf("malloc: %v", err)
	}
	st, err := fastsim.LaunchTierCtx(context.Background(), tier, dev, prog, grid, block, []uint64{in, out, n})
	if err != nil {
		t.Fatalf("%v tier: launch: %v", tier, err)
	}
	o := launchOutcome{
		out:           dev.ReadGlobal(out, int(n*4)),
		halted:        st.Halted,
		pointerChecks: st.PointerChecks,
		ecTotal:       st.ECChecked + st.ECElided,
		races:         len(st.Races),
	}
	for _, r := range st.Faults {
		o.faults = append(o.faults, fmt.Sprintf("warp%d lane%d: %v", r.Warp, r.Lane, r.Fault))
	}
	return o
}

// diffOutcome asserts the residual's outcome matches the general
// program's: same output bytes, same faults, same halt status, same
// safety decisions. The ECChecked/ECElided split may legitimately
// shift toward elided (that is the point of E pre-resolution), but the
// total number of guarded-access decisions must be preserved — no
// check may silently disappear except by a proven elision, and the
// residual may not resurrect any.
func diffOutcome(t *testing.T, label string, gen, res launchOutcome) {
	t.Helper()
	if gen.halted != res.halted {
		t.Errorf("%s: Halted diverges: general=%v residual=%v", label, gen.halted, res.halted)
	}
	if gen.pointerChecks != res.pointerChecks {
		t.Errorf("%s: PointerChecks diverges: general=%d residual=%d", label, gen.pointerChecks, res.pointerChecks)
	}
	if gen.ecTotal != res.ecTotal {
		t.Errorf("%s: extent-check decisions diverge: general=%d residual=%d", label, gen.ecTotal, res.ecTotal)
	}
	if gen.races != res.races {
		t.Errorf("%s: race findings diverge: general=%d residual=%d", label, gen.races, res.races)
	}
	if len(gen.faults) != len(res.faults) {
		t.Errorf("%s: fault count diverges: general=%v residual=%v", label, gen.faults, res.faults)
	} else {
		for i := range gen.faults {
			if gen.faults[i] != res.faults[i] {
				t.Errorf("%s: fault %d diverges:\ngeneral:  %s\nresidual: %s", label, i, gen.faults[i], res.faults[i])
			}
		}
	}
	if len(gen.out) != len(res.out) {
		t.Fatalf("%s: output length diverges", label)
	}
	for i := range gen.out {
		if gen.out[i] != res.out[i] {
			t.Errorf("%s: output byte %d diverges: general=%#x residual=%#x", label, i, gen.out[i], res.out[i])
			return
		}
	}
}

// TestDifferentialSpecializedCorpus is the specializer's primary
// correctness gate (wired into scripts/check.sh): for every workload,
// the residual program specialized against the concrete contract must
// be observationally identical to the general program under that
// contract's launch — same output bytes, faults, halt status, and
// safety decisions — on both execution tiers.
func TestDifferentialSpecializedCorpus(t *testing.T) {
	specs := workloads.All()
	if testing.Short() {
		specs = specs[:6]
	}
	cfg := sim.ScaledConfig(2)
	cfg.RaceOracle = true
	for _, s := range specs {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			res, err := s.Specialized()
			if err != nil {
				t.Fatalf("specialize: %v", err)
			}
			for _, tier := range []fastsim.Tier{fastsim.TierCycle, fastsim.TierCompiled} {
				gen := launch(t, res.Original, cfg, tier, s.Grid, s.Block, s.N)
				spec := launch(t, res.Residual, cfg, tier, s.Grid, s.Block, s.N)
				diffOutcome(t, fmt.Sprintf("%s/%v", s.Name, tier), gen, spec)
			}
		})
	}
}
