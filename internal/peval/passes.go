package peval

import (
	"fmt"
	"math"

	"lmi/internal/bounds"
	"lmi/internal/isa"
)

// passes.go — the round structure of the specializer. Each round runs
// the constant analysis once and then, in order: emits the in-place
// folds and branch prunings it justifies, emits one drop batch
// (never-taken branches, unreachable code, dead pure writers, erased
// SSYs), and — only on a round that found nothing else — unrolls one
// constant-trip loop. Rounds repeat to fixpoint under Options.MaxRounds.
// Every emitted transform is appended to the certificate log and
// applied through the same ApplyTransform the audit replays.

// unpredicated reports a hardwired-true guard.
func unpredicated(in *isa.Instr) bool { return in.Pred == isa.PT && !in.PredNeg }

// foldableImm reports whether v can ride in the 32-bit immediate slot
// under the sign-extended register convention.
func foldableImm(v uint64) bool { return v == sx32(int32(v)) }

// collectFolds gathers this round's in-place transforms from the
// analysis: constant folds to MOV-immediate, register operands
// rewritten to immediate form, and always-taken branch prunings. At
// most one transform per PC per round.
func collectFolds(p *isa.Program, a *analysis) []Transform {
	var ts []Transform
	for i := range p.Instrs {
		if !a.reached[i] {
			continue
		}
		in := &p.Instrs[i]
		if in.Hint.A || in.Hint.E {
			continue // hinted instructions are immutable
		}
		st := a.in[i]
		switch {
		case in.Op == isa.LDC && unpredicated(in) && isCountLoad(p, in, a.c):
			if n, ok := countExact(a.c, p.NumParams); ok && foldableImm(uint64(n)) {
				ts = append(ts, Transform{Kind: TFoldCount, PC: i, Imm: n})
				continue
			}
		case in.Op == isa.S2R && unpredicated(in):
			if v, ok := sregDim(isa.SReg(in.Aux), a.d); ok && v >= 0 && v <= math.MaxInt32 {
				ts = append(ts, Transform{Kind: TFoldSReg, PC: i, Imm: v})
				continue
			}
		case in.Op == isa.BRA && !unpredicated(in):
			if known, val := st.guard(in); known {
				if val {
					ts = append(ts, Transform{Kind: TPruneTaken, PC: i})
				}
				// Never-taken branches are dropped, not rewritten.
				continue
			}
		case in.Op.IsInt() && in.Op != isa.SETP && unpredicated(in) &&
			in.WritesDst() && in.Dst != isa.RZ && !(in.Op == isa.MOV && in.HasImm):
			if v, ok := evalALU(in, st); ok && foldableImm(v) {
				ts = append(ts, Transform{Kind: TFoldConst, PC: i, Imm: int64(int32(v))})
				continue
			}
		}
		// Operand-to-immediate rewriting, for instructions the cases
		// above left untouched this round. F2I/I2F are excluded: the
		// execution units read their register operand even in the
		// immediate form.
		if in.Op == isa.F2I || in.Op == isa.I2F {
			continue
		}
		if idx := in.Op.ImmSrcIndex(); idx >= 0 && !in.HasImm && in.Src[idx] != isa.RZ {
			if v, ok := st.reg(in.Src[idx]); ok && foldableImm(v) {
				ts = append(ts, Transform{Kind: TFoldImm, PC: i, Imm: int64(int32(v))})
			}
		}
	}
	return ts
}

// pureDroppable reports whether the opcode has no effect beyond its
// register write: safe to remove when the write is dead. Real memory
// accesses stay — they can fault and they carry the extent-check
// counters the differential gate pins; LDC reads the constant bank,
// which does neither.
func pureDroppable(op isa.Opcode) bool {
	switch op {
	case isa.MOV, isa.IADD, isa.IADD3, isa.IMUL, isa.IMAD, isa.IMNMX,
		isa.SHL, isa.SHR, isa.AND, isa.OR, isa.XOR, isa.SEL,
		isa.S2R, isa.LDC, isa.FADD, isa.FMUL, isa.FFMA, isa.MUFU,
		isa.F2I, isa.I2F:
		return true
	}
	return false
}

// collectDrops builds this round's drop batch against the (post-fold)
// program w, reusing the round's analysis for reachability and branch
// facts (folds only refine them). Dead-writer elimination iterates: a
// chain of pure writers feeding only each other falls together.
func collectDrops(w *isa.Program, a *analysis) []Drop {
	n := len(w.Instrs)
	dropped := make([]bool, n)
	reason := make([]string, n)
	mark := func(i int, r string) {
		if !dropped[i] {
			dropped[i] = true
			reason[i] = r
		}
	}
	for i := range w.Instrs {
		if !a.reached[i] {
			mark(i, DropUnreachable)
			continue
		}
		in := &w.Instrs[i]
		if in.Op == isa.BRA && !unpredicated(in) {
			if known, val := a.in[i].guard(in); known && !val {
				mark(i, DropBranchFalse)
			}
		}
	}
	// Dead pure writers and dead predicate writers, to fixpoint over
	// the retained set.
	for {
		regReads := map[isa.Reg]int{}
		predReads := map[isa.PredReg]int{}
		var buf [3]isa.Reg
		for i := range w.Instrs {
			if dropped[i] {
				continue
			}
			in := &w.Instrs[i]
			for _, r := range in.SrcRegs(buf[:0]) {
				if r != isa.RZ {
					regReads[r]++
				}
			}
			if in.Pred != isa.PT || in.PredNeg {
				predReads[in.Pred&7]++
			}
			if in.Op == isa.SEL {
				predReads[isa.PredReg(in.Aux&7)]++
			}
		}
		changed := false
		for i := range w.Instrs {
			if dropped[i] {
				continue
			}
			in := &w.Instrs[i]
			if in.Hint.A || in.Hint.E || !unpredicated(in) {
				continue
			}
			switch {
			case pureDroppable(in.Op) && in.WritesDst() && in.Dst != isa.RZ && regReads[in.Dst] == 0:
				mark(i, DropDead)
				changed = true
			case (in.Op == isa.SETP || in.Op == isa.FSETP) && predReads[isa.PredReg(in.Dst&7)] == 0:
				mark(i, DropDeadPred)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// SSYs whose pushed reconvergence point the next retained
	// instruction — an unconditional, hence uniform, branch —
	// immediately erases.
	for i := range w.Instrs {
		if dropped[i] || w.Instrs[i].Op != isa.SSY {
			continue
		}
		for j := i + 1; j < n; j++ {
			if dropped[j] {
				continue
			}
			if in := &w.Instrs[j]; in.Op == isa.BRA && unpredicated(in) {
				mark(i, DropSSYUniform)
			}
			break
		}
	}
	var drops []Drop
	for i := range w.Instrs {
		if dropped[i] {
			drops = append(drops, Drop{PC: i, Reason: reason[i]})
		}
	}
	return drops
}

// bodyAdvance concretely executes one loop-body pass for the trip
// computation: starting from the induction register's value, it walks
// the straight-line body with the same ALU semantics the analysis
// uses, and returns the induction register's value at the back edge.
// Every other register starts unknown — loop-invariant constants the
// update chain needs must be materialized by the body itself
// (immediates, MOVs), which the fold rounds have already arranged.
func bodyAdvance(p *isa.Program, bs, be int, ind isa.Reg, v uint64) (uint64, bool) {
	st := consts{regs: map[isa.Reg]uint64{ind: v}, preds: map[isa.PredReg]bool{}}
	for i := bs; i < be; i++ {
		in := &p.Instrs[i]
		if !in.WritesDst() || in.Dst == isa.RZ {
			continue
		}
		if in.Hint.A || !in.Op.IsInt() {
			st.clearReg(in.Dst)
			continue
		}
		if out, ok := evalALU(in, st); ok {
			st.setReg(in.Dst, out)
		} else {
			st.clearReg(in.Dst)
		}
	}
	return st.reg(ind)
}

// loopEntryState merges the analysis states flowing into the loop head
// from outside the loop (every predecessor except the back edge).
func loopEntryState(a *analysis, head, backEdge int) (consts, bool) {
	var entry consts
	found := false
	for i := range a.p.Instrs {
		if !a.reached[i] || i == backEdge {
			continue
		}
		hasEdge := false
		for _, s := range a.succs(i, a.in[i]) {
			if s == head {
				hasEdge = true
				break
			}
		}
		if !hasEdge {
			continue
		}
		out := a.outState(i)
		if !found {
			entry, found = out.clone(), true
		} else {
			entry.meet(out)
		}
	}
	return entry, found
}

// findUnroll searches for one constant-trip counted loop matching the
// canonical lowering shape and computes its trip count by concrete
// iteration. The lowest-headed qualifying loop wins (inner loops
// qualify before outer ones: an outer body still contains the inner
// loop's branches and is rejected as non-straight-line).
func findUnroll(p *isa.Program, a *analysis, opt Options) *UnrollInfo {
	n := len(p.Instrs)
	for be := 0; be < n; be++ {
		back := &p.Instrs[be]
		if back.Op != isa.BRA || !unpredicated(back) || int(back.Target) >= be {
			continue
		}
		h := int(back.Target)
		bs, exit := h+4, be+1
		if h < 1 || bs > be || exit >= n || !a.reached[h] {
			continue
		}
		head := &p.Instrs[h]
		guard := &p.Instrs[h+2]
		if head.Op != isa.SETP || !unpredicated(head) ||
			p.Instrs[h+1].Op != isa.SSY || !unpredicated(&p.Instrs[h+1]) || int(p.Instrs[h+1].Target) != exit ||
			guard.Op != isa.BRA || guard.Pred != isa.PredReg(head.Dst&7) || guard.PredNeg || int(guard.Target) != bs ||
			p.Instrs[h+3].Op != isa.BRA || !unpredicated(&p.Instrs[h+3]) || int(p.Instrs[h+3].Target) != exit {
			continue
		}
		if !loopBodyOK(p, h, bs, be, head) {
			continue
		}
		entry, found := loopEntryState(a, h, be)
		if !found {
			continue
		}
		ind := head.Src[0]
		init, ok := entry.reg(ind)
		if !ok || ind == isa.RZ {
			continue
		}
		var lim uint64
		if head.HasImm {
			lim = sx32(head.Imm)
		} else if lim, ok = entry.reg(head.Src[1]); !ok {
			continue
		}
		cmp := isa.CmpOp(head.Aux)
		trip := int64(0)
		v := init
		feasible := true
		for cmpSigned(cmp, int64(v), int64(lim)) {
			trip++
			if trip > int64(opt.MaxUnrollTrip) {
				feasible = false
				break
			}
			if v, ok = bodyAdvance(p, bs, be, ind, v); !ok {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		if int(trip)*(be-bs)+1 > opt.MaxUnrollInstrs {
			continue
		}
		return &UnrollInfo{Head: h, BodyStart: bs, BodyEnd: be, Exit: exit, Trip: trip, IndReg: ind}
	}
	return nil
}

// loopBodyOK enforces the unroll side conditions beyond the head
// shape: a straight-line unpredicated body that does not read the
// guard predicate before redefining it, does not redefine the limit
// operand, and is entered from outside only at the head.
func loopBodyOK(p *isa.Program, h, bs, be int, head *isa.Instr) bool {
	pd := isa.PredReg(head.Dst & 7)
	wroteP := false
	for i := bs; i < be; i++ {
		in := &p.Instrs[i]
		switch in.Op {
		case isa.BRA, isa.SSY, isa.EXIT, isa.BAR:
			return false
		}
		if !unpredicated(in) {
			return false
		}
		if in.Op == isa.SEL && isa.PredReg(in.Aux&7) == pd && !wroteP {
			return false
		}
		if (in.Op == isa.SETP || in.Op == isa.FSETP) && isa.PredReg(in.Dst&7) == pd {
			wroteP = true
		}
		if !head.HasImm && in.WritesDst() && in.Dst == head.Src[1] && in.Dst != isa.RZ {
			return false
		}
	}
	for i := range p.Instrs {
		if i >= h && i <= be {
			continue
		}
		in := &p.Instrs[i]
		if (in.Op == isa.BRA || in.Op == isa.SSY) && int(in.Target) > h && int(in.Target) <= be {
			return false
		}
	}
	return true
}

// runRounds drives the specializer to fixpoint, appending every
// emitted transform to the certificate and applying it via
// ApplyTransform.
func runRounds(p *isa.Program, prov []int, c bounds.Contract, opt Options, cert *Certificate) (*isa.Program, []int, error) {
	apply := func(t Transform) error {
		q, pr, err := ApplyTransform(p, prov, t)
		if err != nil {
			return err
		}
		p, prov = q, pr
		cert.Transforms = append(cert.Transforms, t)
		return nil
	}
	for round := 0; round < opt.MaxRounds; round++ {
		a := sccpAnalyze(p, c)
		progress := false
		for _, t := range collectFolds(p, a) {
			if err := apply(t); err != nil {
				return nil, nil, fmt.Errorf("round %d: %w", round, err)
			}
			progress = true
		}
		if drops := collectDrops(p, a); len(drops) > 0 {
			if err := apply(Transform{Kind: TDrop, Drops: drops}); err != nil {
				return nil, nil, fmt.Errorf("round %d: %w", round, err)
			}
			progress = true
		}
		if progress {
			continue
		}
		if u := findUnroll(p, a, opt); u != nil {
			if err := apply(Transform{Kind: TUnroll, Unroll: u}); err != nil {
				return nil, nil, fmt.Errorf("round %d: %w", round, err)
			}
			continue
		}
		break
	}
	return p, prov, nil
}
