package peval_test

import (
	"testing"

	"lmi/internal/bounds"
	"lmi/internal/isa"
	"lmi/internal/peval"
	"lmi/internal/workloads"
)

// TestSpecializeCorpus specializes every workload against its concrete
// contract and checks the structural invariants the certificate
// promises: a valid residual, no growth without an unroll, provenance
// into the original, and a deterministic certificate digest.
func TestSpecializeCorpus(t *testing.T) {
	transformed := 0
	for _, s := range workloads.All() {
		res, err := s.Specialized()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if err := res.Residual.Validate(); err != nil {
			t.Fatalf("%s: residual invalid: %v", s.Name, err)
		}
		cert := res.Cert
		if cert.OrigInstrs != len(res.Original.Instrs) || cert.ResidualInstrs != len(res.Residual.Instrs) {
			t.Fatalf("%s: certificate instruction counts %d/%d do not match programs %d/%d",
				s.Name, cert.OrigInstrs, cert.ResidualInstrs, len(res.Original.Instrs), len(res.Residual.Instrs))
		}
		if len(cert.Provenance) != len(res.Residual.Instrs) {
			t.Fatalf("%s: provenance length %d != residual length %d",
				s.Name, len(cert.Provenance), len(res.Residual.Instrs))
		}
		for i, src := range cert.Provenance {
			if src < -1 || src >= len(res.Original.Instrs) {
				t.Fatalf("%s: provenance[%d] = %d out of range", s.Name, i, src)
			}
		}
		// E hints must be monotone: specialization never resurrects an
		// extent check the general contract already proved away.
		if origE, resE := countE(res.Original), countE(res.Residual); resE < origE && cert.ResidualInstrs == cert.OrigInstrs {
			t.Fatalf("%s: residual has %d E hints, original %d", s.Name, resE, origE)
		}
		if len(cert.Transforms) > 0 {
			transformed++
		}
		// Determinism: a second specialization from scratch must agree
		// bit-for-bit (the Once cache would mask this, so respecialize).
		f, err := s.Kernel()
		if err != nil {
			t.Fatal(err)
		}
		again, err := peval.Specialize(f, s.Contract(), s.ConcreteContract(), peval.Options{})
		if err != nil {
			t.Fatalf("%s: respecialize: %v", s.Name, err)
		}
		d1, err := cert.Digest()
		if err != nil {
			t.Fatal(err)
		}
		d2, err := again.Cert.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Fatalf("%s: certificate digest not deterministic", s.Name)
		}
		if len(again.Residual.Instrs) != len(res.Residual.Instrs) {
			t.Fatalf("%s: residual length not deterministic", s.Name)
		}
		for i := range again.Residual.Instrs {
			if again.Residual.Instrs[i] != res.Residual.Instrs[i] {
				t.Fatalf("%s: residual instruction %d not deterministic", s.Name, i)
			}
		}
	}
	if transformed == 0 {
		t.Fatal("no workload was actually transformed — the specializer is a no-op on the corpus")
	}
	t.Logf("%d/%d workloads transformed", transformed, len(workloads.All()))
}

// TestTransformCatalogExercised asserts the corpus exercises the
// transformation catalog non-trivially: constant folds, branch
// prunes, and dead-code drops must all fire somewhere (a catalog
// entry nothing triggers would be dead, untested machinery).
func TestTransformCatalogExercised(t *testing.T) {
	kinds := map[string]int{}
	for _, s := range workloads.All() {
		res, err := s.Specialized()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		for _, tr := range res.Cert.Transforms {
			kinds[tr.Kind]++
		}
	}
	t.Logf("transform kinds over corpus: %v", kinds)
	for _, k := range []string{
		peval.TSetElide, peval.TFoldCount, peval.TFoldSReg,
		peval.TFoldConst, peval.TFoldImm, peval.TDrop, peval.TUnroll,
	} {
		if kinds[k] == 0 {
			t.Errorf("transform kind %q never fires on the corpus", k)
		}
	}
}

// TestIdentityResidual pins the satellite requirement: an empty
// contract, or one the general contract does not cover, yields the
// general program byte-for-byte with an empty transformation log.
func TestIdentityResidual(t *testing.T) {
	s := workloads.All()[0]
	f, err := s.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	for name, concrete := range map[string]bounds.Contract{
		"empty":          {},
		"geometry-drift": func() bounds.Contract { c := s.ConcreteContract(); c.BlockDimX++; return c }(),
		"count-rename":   func() bounds.Contract { c := s.ConcreteContract(); c.CountParam = 0; return c }(),
		"range-widening": func() bounds.Contract { c := s.ConcreteContract(); c.CountMax = c.CountMax * 2; return c }(),
	} {
		res, err := peval.Specialize(f, s.Contract(), concrete, peval.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Cert.Transforms) != 0 {
			t.Fatalf("%s: identity residual has %d transforms", name, len(res.Cert.Transforms))
		}
		if len(res.Residual.Instrs) != len(res.Original.Instrs) {
			t.Fatalf("%s: identity residual length differs", name)
		}
		for i := range res.Residual.Instrs {
			if res.Residual.Instrs[i] != res.Original.Instrs[i] {
				t.Fatalf("%s: identity residual differs at %d", name, i)
			}
		}
	}
}

// TestPartialContracts pins the satellite requirement: partially-known
// contracts still specialize soundly. A contract that pins only the
// geometry (count range left at the general bounds) must produce a
// valid residual — the geometry folds fire, the count folds do not —
// and a contract pinning the count but drifting the geometry falls
// back to identity (handled above).
func TestPartialContracts(t *testing.T) {
	for _, s := range workloads.All() {
		f, err := s.Kernel()
		if err != nil {
			t.Fatal(err)
		}
		geomOnly := s.Contract() // same range, same geometry: covered, count not pinned
		res, err := peval.Specialize(f, s.Contract(), geomOnly, peval.Options{})
		if err != nil {
			t.Fatalf("%s: geometry-only: %v", s.Name, err)
		}
		if err := res.Residual.Validate(); err != nil {
			t.Fatalf("%s: geometry-only residual invalid: %v", s.Name, err)
		}
		for _, tr := range res.Cert.Transforms {
			if tr.Kind == peval.TFoldCount {
				t.Fatalf("%s: count fold fired without a pinned count", s.Name)
			}
		}
	}
}

func countE(p *isa.Program) int {
	n := 0
	for i := range p.Instrs {
		if p.Instrs[i].Hint.E {
			n++
		}
	}
	return n
}
