// Package peval is the contract-driven partial evaluator: given a
// kernel and a launch contract that is fully or partially known at
// deployment time, it specializes the compiled microcode against the
// contract — folding contract constants (the pinned element count, the
// launch geometry) into the dataflow, running sparse conditional
// constant propagation with branch pruning, unrolling small
// constant-trip loops, stripping provably-dead instructions, and
// pre-resolving E hint bits the concrete contract proves — and emits
// the residual program together with a specialization certificate.
//
// The certificate is a replayable proof script: the contract shape,
// the ordered transformation log, and per-instruction provenance back
// to the general program (and through its source map to the IR).
// Soundness is enforced twice, in the pattern of the elide audit: the
// transfer functions here mirror the simulator's semantics bit for
// bit, and lint.SpecializeAudit independently replays the log, judging
// every transform's side conditions with its own analysis before the
// residual may be served. A contract the specializer cannot exploit —
// empty, partial, or not covered by the program's general contract —
// yields the identity residual: byte-for-byte the general program,
// with an empty transformation log.
package peval

import (
	"fmt"
	"strconv"
	"strings"

	"lmi/internal/bounds"
	"lmi/internal/compiler"
	"lmi/internal/ir"
	"lmi/internal/isa"
)

// Options bounds the specializer's transformation budget.
type Options struct {
	// MaxUnrollTrip caps the trip count of an unrollable loop
	// (default 64).
	MaxUnrollTrip int
	// MaxUnrollInstrs caps the instruction count of one unrolled
	// region (default 4096).
	MaxUnrollInstrs int
	// MaxRounds caps the fold/prune/drop/unroll fixpoint rounds
	// (default 32).
	MaxRounds int
}

func (o Options) withDefaults() Options {
	if o.MaxUnrollTrip == 0 {
		o.MaxUnrollTrip = 64
	}
	if o.MaxUnrollInstrs == 0 {
		o.MaxUnrollInstrs = 4096
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 32
	}
	return o
}

// Result is one specialization: the general (elided) program the
// kernel compiles to, the residual specialized against the concrete
// contract, the shared source map, and the certificate tying them
// together.
type Result struct {
	Original  *isa.Program
	Residual  *isa.Program
	SourceMap []compiler.SourceLoc
	Cert      *Certificate
}

// Specialize compiles f under its general contract and partially
// evaluates the program against the concrete contract. When the
// concrete contract is empty or does not refine the general one, the
// residual is the identity: the general program byte-for-byte with an
// empty transformation log (still certified, so the serving path has
// one uniform artifact shape).
func Specialize(f *ir.Func, general, concrete bounds.Contract, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	orig, srcMap, _, err := compiler.CompileElidedWithSourceMap(f, general)
	if err != nil {
		return nil, fmt.Errorf("peval: %s: general compile: %w", f.Name, err)
	}
	res := &Result{Original: orig, SourceMap: srcMap}
	cert := &Certificate{
		Name: orig.Name, Shape: ShapeOf(concrete), Contract: concrete,
		OrigInstrs: len(orig.Instrs),
	}
	p := cloneProgram(orig)
	prov := identityProv(len(orig.Instrs))
	if concrete != (bounds.Contract{}) && Covers(general, concrete) {
		// E-bit pre-resolution: recompile under the concrete contract
		// and adopt every extra proof. The instruction streams must be
		// identical modulo E — the bounds analysis only influences hint
		// bits, never code shape — and a hint the general contract
		// proved can never be lost under a refinement.
		if concrete != general {
			up, _, _, err := compiler.CompileElidedWithSourceMap(f, concrete)
			if err != nil {
				return nil, fmt.Errorf("peval: %s: concrete compile: %w", f.Name, err)
			}
			pcs, err := diffElide(p, up)
			if err != nil {
				return nil, fmt.Errorf("peval: %s: %w", f.Name, err)
			}
			for _, pc := range pcs {
				t := Transform{Kind: TSetElide, PC: pc}
				if p, prov, err = ApplyTransform(p, prov, t); err != nil {
					return nil, fmt.Errorf("peval: %s: %w", f.Name, err)
				}
				cert.Transforms = append(cert.Transforms, t)
			}
		}
		if p, prov, err = runRounds(p, prov, concrete, opt, cert); err != nil {
			return nil, fmt.Errorf("peval: %s: %w", f.Name, err)
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("peval: %s: residual invalid: %w", f.Name, err)
		}
	}
	cert.ResidualInstrs = len(p.Instrs)
	cert.Provenance = prov
	res.Residual, res.Cert = p, cert
	return res, nil
}

// diffElide compares the general and concretely-recompiled programs,
// which must agree on everything but E hints, and returns the PCs
// whose E the refinement newly proves.
func diffElide(general, concrete *isa.Program) ([]int, error) {
	if len(general.Instrs) != len(concrete.Instrs) {
		return nil, fmt.Errorf("concrete recompile changed the instruction count: %d != %d",
			len(concrete.Instrs), len(general.Instrs))
	}
	var pcs []int
	for i := range general.Instrs {
		g, c := general.Instrs[i], concrete.Instrs[i]
		ge, ce := g.Hint.E, c.Hint.E
		g.Hint.E, c.Hint.E = false, false
		if g != c {
			return nil, fmt.Errorf("concrete recompile diverged beyond E hints at pc %d", i)
		}
		if ge && !ce {
			return nil, fmt.Errorf("concrete recompile lost a proven E hint at pc %d", i)
		}
		if ce && !ge {
			pcs = append(pcs, i)
		}
	}
	return pcs, nil
}

// Covers reports whether the concrete contract refines the general
// one: any launch satisfying the concrete contract also satisfies the
// general contract the program was compiled (and its E bits proven)
// under. The launch geometry must match exactly — the compiled code's
// special-register facts depend on it.
func Covers(general, concrete bounds.Contract) bool {
	gd, cd := contractDims(general), contractDims(concrete)
	if gd.bdx != cd.bdx || gd.bdy != cd.bdy || gd.gdx != cd.gdx || gd.gdy != cd.gdy {
		return false
	}
	if general.CountParam < 0 {
		return concrete.CountParam < 0
	}
	return concrete.CountParam == general.CountParam &&
		concrete.CountMin >= general.CountMin &&
		concrete.CountMax <= general.CountMax &&
		concrete.CountMin >= 1 && concrete.CountMax >= concrete.CountMin &&
		concrete.PtrBytesPerCount >= general.PtrBytesPerCount
}

// Match reports whether a launch (element count n at grid x block,
// 1-D) satisfies the contract — the serving path's dispatch test: a
// specialized residual only runs for launches its contract covers,
// everything else falls back to the general program.
func Match(c bounds.Contract, n uint64, grid, block int) bool {
	d := contractDims(c)
	if !d.ok || d.bdy != 1 || d.gdy != 1 {
		return false
	}
	if int64(block) != d.bdx || int64(grid) != d.gdx {
		return false
	}
	if c.CountParam >= 0 {
		if n > uint64(c.CountMax) || int64(n) < c.CountMin {
			return false
		}
	}
	return true
}

// ShapeOf renders the canonical contract-shape string the bundle cache
// keys specialized variants by.
func ShapeOf(c bounds.Contract) string {
	if c == (bounds.Contract{}) {
		return "empty"
	}
	d := contractDims(c)
	if c.CountParam < 0 {
		return fmt.Sprintf("nocount:b%dx%d:g%dx%d", d.bdx, d.bdy, d.gdx, d.gdy)
	}
	return fmt.Sprintf("p%d:n[%d,%d]:pbc%d:b%dx%d:g%dx%d",
		c.CountParam, c.CountMin, c.CountMax, c.PtrBytesPerCount, d.bdx, d.bdy, d.gdx, d.gdy)
}

// ShapeKeys lists the keys ApplyShape accepts, in display order (the
// CLI layer validates the flag syntax against this set).
func ShapeKeys() []string {
	return []string{"n", "nmin", "nmax", "count", "pbc", "block", "grid", "blocky", "gridy"}
}

// ApplyShape overlays a "key=value,..." contract-shape flag onto a
// base contract: n pins the count range to one value, nmin/nmax bound
// it, count renames the count parameter (-1 for none), pbc sets the
// per-count byte guarantee, block/grid/blocky/gridy the launch
// geometry.
func ApplyShape(base bounds.Contract, spec string) (bounds.Contract, error) {
	c := base
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	known := ShapeKeys()
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return c, fmt.Errorf("peval: contract shape: %q is not key=value", part)
		}
		val, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
		if err != nil {
			return c, fmt.Errorf("peval: contract shape: %s: %q is not an integer", k, v)
		}
		switch strings.TrimSpace(k) {
		case "n":
			c.CountMin, c.CountMax = val, val
		case "nmin":
			c.CountMin = val
		case "nmax":
			c.CountMax = val
		case "count":
			c.CountParam = int(val)
		case "pbc":
			c.PtrBytesPerCount = val
		case "block":
			c.BlockDimX = val
		case "grid":
			c.GridDimX = val
		case "blocky":
			c.BlockDimY = val
		case "gridy":
			c.GridDimY = val
		default:
			return c, fmt.Errorf("peval: contract shape: unknown key %q (want one of %s)",
				k, strings.Join(known, ", "))
		}
	}
	if c.CountParam >= 0 && (c.CountMin < 1 || c.CountMax < c.CountMin) {
		return c, fmt.Errorf("peval: contract shape: count range [%d, %d] invalid", c.CountMin, c.CountMax)
	}
	return c, nil
}
