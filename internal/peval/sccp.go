package peval

import (
	"math"

	"lmi/internal/bounds"
	"lmi/internal/isa"
)

// sccp.go — sparse conditional constant propagation over the microcode
// under a launch contract. The transfer functions mirror the cycle
// simulator's execution semantics bit for bit (sign-extended 32-bit
// narrowing, full-width signed compares, the IMNMX Aux==1 max quirk,
// SSY being a plain state write rather than a jump), because a folded
// constant is only sound if it equals the value every lane of every
// warp would compute. A value is recorded known only when it is
// lane-invariant by construction: the register file starts zeroed,
// immediates and contract constants are uniform, and the
// thread-varying sources (TID/CTAID/LANEID reads, memory loads,
// pointer-hinted results) always produce unknown.

// sx32 sign-extends a 32-bit value into the 64-bit register convention.
func sx32(x int32) uint64 { return uint64(int64(x)) }

// consts is the abstract state at one program point: the registers and
// predicates whose values are proven identical across all lanes.
type consts struct {
	regs  map[isa.Reg]uint64
	preds map[isa.PredReg]bool
}

// entryState mirrors the machine's warp initialization: a zeroed
// register file, predicates false except hardwired-true PT.
func entryState() consts {
	s := consts{regs: map[isa.Reg]uint64{}, preds: map[isa.PredReg]bool{}}
	for p := isa.PredReg(0); p < 8; p++ {
		s.preds[p] = p == isa.PT
	}
	return s
}

func (s consts) clone() consts {
	c := consts{
		regs:  make(map[isa.Reg]uint64, len(s.regs)),
		preds: make(map[isa.PredReg]bool, len(s.preds)),
	}
	for r, v := range s.regs {
		c.regs[r] = v
	}
	for p, v := range s.preds {
		c.preds[p] = v
	}
	return c
}

// reg reads a register's known value (RZ is hardwired zero). The
// zeroed-register-file entry fact flows from entryState, so absence
// here genuinely means unknown.
func (s consts) reg(r isa.Reg) (uint64, bool) {
	if r == isa.RZ {
		return 0, true
	}
	v, ok := s.regs[r]
	return v, ok
}

func (s consts) setReg(r isa.Reg, v uint64) {
	if r != isa.RZ {
		s.regs[r] = v
	}
}

func (s consts) clearReg(r isa.Reg) {
	if r != isa.RZ {
		delete(s.regs, r)
	}
}

// meet intersects other into s and reports whether s changed.
func (s consts) meet(other consts) bool {
	changed := false
	for r, v := range s.regs {
		if ov, ok := other.regs[r]; !ok || ov != v {
			delete(s.regs, r)
			changed = true
		}
	}
	for p, v := range s.preds {
		if ov, ok := other.preds[p]; !ok || ov != v {
			delete(s.preds, p)
			changed = true
		}
	}
	return changed
}

// guard evaluates an instruction's guard predicate against the state:
// (known, value-after-negation).
func (s consts) guard(in *isa.Instr) (bool, bool) {
	v, ok := s.preds[in.Pred&7]
	if !ok {
		return false, false
	}
	if in.PredNeg {
		v = !v
	}
	return true, v
}

// dims holds the contract's normalized launch geometry when usable.
type dims struct {
	ok                 bool
	bdx, bdy, gdx, gdy int64
}

func contractDims(c bounds.Contract) dims {
	d := dims{bdx: c.BlockDimX, bdy: c.BlockDimY, gdx: c.GridDimX, gdy: c.GridDimY}
	if d.bdy == 0 {
		d.bdy = 1
	}
	if d.gdy == 0 {
		d.gdy = 1
	}
	d.ok = d.bdx >= 1 && d.bdx <= 1024 && d.gdx >= 1 && d.bdy >= 1 && d.gdy >= 1
	return d
}

// countExact returns the contract's pinned element count when the
// range is a single value an MOV immediate can represent.
func countExact(c bounds.Contract, numParams int) (int64, bool) {
	if c.CountParam < 0 || c.CountParam >= numParams {
		return 0, false
	}
	if c.CountMin < 1 || c.CountMin != c.CountMax || c.CountMax > math.MaxInt32 {
		return 0, false
	}
	return c.CountMax, true
}

// isCountLoad reports whether the instruction is the canonical
// constant-bank load of the contract's count parameter: an
// unpredicated 8-byte LDC at the parameter's byte offset with a zero
// base.
func isCountLoad(p *isa.Program, in *isa.Instr, c bounds.Contract) bool {
	if in.Op != isa.LDC || in.Src[0] != isa.RZ || in.AccSize() != 8 {
		return false
	}
	if c.CountParam < 0 || c.CountParam >= p.NumParams {
		return false
	}
	return int(in.Imm) == p.ParamBase+8*c.CountParam
}

// sregDim returns the contract-pinned value of a launch-geometry
// special register ((ok=false for the thread-varying ones).
func sregDim(sr isa.SReg, d dims) (int64, bool) {
	if !d.ok {
		return 0, false
	}
	switch sr {
	case isa.SRNtidX:
		return d.bdx, true
	case isa.SRNtidY:
		return d.bdy, true
	case isa.SRNctaidX:
		return d.gdx, true
	case isa.SRNctaidY:
		return d.gdy, true
	}
	return 0, false
}

// evalALU computes the constant result of an integer ALU instruction
// (other than SETP) from the state, mirroring the simulator's intOp:
// source collection with immediate routing, the per-op function, and
// the 32-bit narrowing sign-extension unless W64. Pointer-hinted
// instructions never evaluate: their result passes through the
// mechanism's check.
func evalALU(in *isa.Instr, s consts) (uint64, bool) {
	if in.Hint.A {
		return 0, false
	}
	src := func(i int) (uint64, bool) {
		if in.HasImm && i == in.Op.ImmSrcIndex() {
			return sx32(in.Imm), true
		}
		return s.reg(in.Src[i])
	}
	bin := func(f func(a, b uint64) uint64) (uint64, bool) {
		a, aok := src(0)
		b, bok := src(1)
		if !aok || !bok {
			return 0, false
		}
		return f(a, b), true
	}
	tern := func(f func(a, b, c uint64) uint64) (uint64, bool) {
		a, aok := src(0)
		b, bok := src(1)
		c, cok := src(2)
		if !aok || !bok || !cok {
			return 0, false
		}
		return f(a, b, c), true
	}
	w64 := in.W64()
	var out uint64
	var ok bool
	switch in.Op {
	case isa.MOV:
		out, ok = src(0)
	case isa.IADD:
		out, ok = bin(func(a, b uint64) uint64 { return a + b })
	case isa.IADD3:
		out, ok = tern(func(a, b, c uint64) uint64 { return a + b + c })
	case isa.IMUL:
		out, ok = bin(func(a, b uint64) uint64 { return uint64(int64(a) * int64(b)) })
	case isa.IMAD:
		out, ok = tern(func(a, b, c uint64) uint64 { return uint64(int64(a)*int64(b) + int64(c)) })
	case isa.IMNMX:
		out, ok = bin(func(a, b uint64) uint64 {
			ai, bi := int64(a), int64(b)
			if (in.Aux == 1) == (ai > bi) { // Aux 1 = max, exactly
				return uint64(ai)
			}
			return uint64(bi)
		})
	case isa.SHL:
		out, ok = bin(func(a, b uint64) uint64 {
			if w64 {
				return a << (b & 63)
			}
			return uint64(uint32(a) << (b & 31))
		})
	case isa.SHR:
		out, ok = bin(func(a, b uint64) uint64 {
			if w64 {
				return a >> (b & 63)
			}
			return uint64(uint32(a) >> (b & 31))
		})
	case isa.AND:
		out, ok = bin(func(a, b uint64) uint64 { return a & b })
	case isa.OR:
		out, ok = bin(func(a, b uint64) uint64 { return a | b })
	case isa.XOR:
		out, ok = bin(func(a, b uint64) uint64 { return a ^ b })
	case isa.SEL:
		pv, pok := s.preds[isa.PredReg(in.Aux&7)]
		if !pok {
			// Both arms equal and known is still a constant.
			a, aok := src(0)
			b, bok := src(1)
			if aok && bok && a == b {
				out, ok = a, true
			}
		} else if pv {
			out, ok = src(0)
		} else {
			out, ok = src(1)
		}
	default:
		return 0, false
	}
	if !ok {
		return 0, false
	}
	if !w64 {
		out = sx32(int32(out))
	}
	return out, true
}

// evalSETP computes a constant SETP predicate result (full 64-bit
// signed compare; an out-of-range comparator yields constant false,
// exactly as the machine does).
func evalSETP(in *isa.Instr, s consts) (bool, bool) {
	a, aok := s.reg(in.Src[0])
	var b uint64
	var bok bool
	if in.HasImm {
		b, bok = sx32(in.Imm), true
	} else {
		b, bok = s.reg(in.Src[1])
	}
	if !aok || !bok {
		return false, false
	}
	return cmpSigned(isa.CmpOp(in.Aux), int64(a), int64(b)), true
}

func cmpSigned(op isa.CmpOp, a, b int64) bool {
	switch op {
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	case isa.CmpGE:
		return a >= b
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	default:
		return false
	}
}

// transfer applies instruction i to a clone of st and returns the
// post-state. The guard is already resolved by the caller: gknown/gval
// say whether the instruction provably executes (or provably does
// not).
func transfer(p *isa.Program, c bounds.Contract, d dims, i int, st consts, gknown, gval bool) consts {
	out := st.clone()
	if gknown && !gval {
		return out // provably predicated off: no architectural effect
	}
	in := &p.Instrs[i]
	// An instruction whose guard is unknown may or may not write; its
	// destination must fall to unknown unless the written value would
	// equal the incumbent — handled by computing the effect and then
	// intersecting when the guard is unknown.
	weak := !gknown

	clearDst := func() {
		if in.WritesDst() {
			out.clearReg(in.Dst)
		}
	}
	setDst := func(v uint64, ok bool) {
		if !in.WritesDst() {
			return
		}
		if !ok {
			out.clearReg(in.Dst)
			return
		}
		if weak {
			if old, known := st.reg(in.Dst); !known || old != v {
				out.clearReg(in.Dst)
				return
			}
		}
		out.setReg(in.Dst, v)
	}
	setPred := func(v bool, ok bool) {
		pd := in.Dst & 7
		if !ok {
			delete(out.preds, isa.PredReg(pd))
			return
		}
		if weak {
			if old, known := st.preds[isa.PredReg(pd)]; !known || old != v {
				delete(out.preds, isa.PredReg(pd))
				return
			}
		}
		out.preds[isa.PredReg(pd)] = v
	}

	switch in.Op {
	case isa.NOP, isa.SYNC, isa.SSY, isa.BAR, isa.BRA, isa.EXIT, isa.TRAP,
		isa.STG, isa.STS, isa.STL, isa.FREE:
		// No register or predicate effect.
	case isa.SETP:
		v, ok := evalSETP(in, st)
		setPred(v, ok)
	case isa.FSETP:
		setPred(false, false)
	case isa.S2R:
		if v, ok := sregDim(isa.SReg(in.Aux), d); ok {
			setDst(uint64(v), true) // raw write, no narrowing
		} else {
			clearDst()
		}
	case isa.LDC:
		if n, ok := countExact(c, p.NumParams); ok && isCountLoad(p, in, c) {
			setDst(uint64(n), true) // raw 8-byte constant-bank read
		} else {
			clearDst()
		}
	case isa.LDG, isa.LDS, isa.LDL, isa.ATOMG, isa.ATOMS, isa.MALLOC:
		clearDst()
	case isa.FADD, isa.FMUL, isa.FFMA, isa.MUFU, isa.F2I, isa.I2F:
		clearDst()
	default:
		if in.Op.IsInt() {
			v, ok := evalALU(in, st)
			setDst(v, ok)
		} else {
			clearDst()
		}
	}
	return out
}

// analysis is the fixpoint result: the entry state and reachability of
// every instruction.
type analysis struct {
	p       *isa.Program
	c       bounds.Contract
	d       dims
	in      []consts
	reached []bool
}

// succs lists the executable successor PCs of instruction i under its
// entry state (guard-pruned branch edges; predicated EXIT falls
// through for the lanes whose guard fails).
func (a *analysis) succs(i int, st consts) []int {
	in := &a.p.Instrs[i]
	gknown, gval := st.guard(in)
	n := len(a.p.Instrs)
	fall := func() []int {
		if i+1 < n {
			return []int{i + 1}
		}
		return nil
	}
	switch in.Op {
	case isa.EXIT:
		if gknown && gval {
			return nil
		}
		if gknown && !gval {
			return fall()
		}
		return fall()
	case isa.BRA:
		tgt := int(in.Target)
		var out []int
		if !gknown || gval {
			if tgt < n {
				out = append(out, tgt)
			}
		}
		if !gknown || !gval {
			out = append(out, fall()...)
		}
		return out
	default:
		return fall()
	}
}

// sccpAnalyze runs the conditional constant propagation to fixpoint.
func sccpAnalyze(p *isa.Program, c bounds.Contract) *analysis {
	a := &analysis{
		p: p, c: c, d: contractDims(c),
		in:      make([]consts, len(p.Instrs)),
		reached: make([]bool, len(p.Instrs)),
	}
	if len(p.Instrs) == 0 {
		return a
	}
	work := []int{0}
	a.in[0] = entryState()
	a.reached[0] = true
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		st := a.in[i]
		in := &p.Instrs[i]
		gknown, gval := st.guard(in)
		out := transfer(p, c, a.d, i, st, gknown, gval)
		for _, s := range a.succs(i, st) {
			if !a.reached[s] {
				a.reached[s] = true
				a.in[s] = out.clone()
				work = append(work, s)
			} else if a.in[s].meet(out) {
				work = append(work, s)
			}
		}
	}
	return a
}

// outState recomputes the post-state of a reached instruction.
func (a *analysis) outState(i int) consts {
	st := a.in[i]
	gknown, gval := st.guard(&a.p.Instrs[i])
	return transfer(a.p, a.c, a.d, i, st, gknown, gval)
}
