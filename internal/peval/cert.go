package peval

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"lmi/internal/bounds"
	"lmi/internal/isa"
)

// Transform kinds, in the vocabulary the specialization certificate
// records and lint.SpecializeAudit re-judges. Every kind is a
// semantics-preserving rewrite under the certificate's contract; the
// certificate is a replayable proof script — ApplyTransform performs
// the mechanical rewrite, the audit supplies the independent judgment
// that each rewrite's side conditions actually hold.
const (
	// TSetElide sets the E hint on a memory access the concrete
	// contract proves in-bounds (justified by re-running the elide
	// audit over the whole residual).
	TSetElide = "set-elide"
	// TFoldCount replaces the element-count constant-bank load with
	// MOV #n when the contract pins the count exactly.
	TFoldCount = "fold-count"
	// TFoldSReg replaces a launch-dimension special-register read with
	// MOV #dim (the contract fixes the launch geometry).
	TFoldSReg = "fold-sreg"
	// TFoldConst replaces an integer ALU instruction whose result is a
	// proven constant with MOV #c.
	TFoldConst = "fold-const"
	// TFoldImm rewrites a register operand whose value is a proven
	// 32-bit constant into the opcode's immediate form.
	TFoldImm = "fold-imm"
	// TPruneTaken unconditionalizes a predicated branch proven
	// always-taken.
	TPruneTaken = "prune-taken"
	// TDrop removes a batch of instructions (see the Drop reasons) and
	// remaps branch targets across the holes.
	TDrop = "drop"
	// TUnroll replaces a constant-trip counted loop with its fully
	// unrolled straight-line body.
	TUnroll = "unroll"
)

// Drop reasons.
const (
	// DropBranchFalse is a predicated branch proven never-taken.
	DropBranchFalse = "branch-false"
	// DropUnreachable is an instruction constant propagation proves no
	// execution reaches.
	DropUnreachable = "unreachable"
	// DropDead is a pure register writer whose destination no retained
	// instruction reads.
	DropDead = "dead"
	// DropDeadPred is a predicate writer whose predicate no retained
	// instruction uses as a guard or SEL selector.
	DropDeadPred = "dead-pred"
	// DropSSYUniform is an SSY whose pushed reconvergence point is
	// erased by the next retained instruction, an unconditional (hence
	// non-divergent) branch, before anything can consume it.
	DropSSYUniform = "ssy-uniform"
)

// Drop is one removed instruction within a TDrop batch.
type Drop struct {
	PC     int    `json:"pc"`
	Reason string `json:"reason"`
}

// UnrollInfo describes one TUnroll: the canonical counted-loop region
// [Head, BodyEnd] (SETP guard; SSY Exit; @P BRA body; BRA Exit; body;
// BRA Head) replaced by Trip copies of the body followed by the
// original guard SETP (recomputing the exit-time predicate value).
type UnrollInfo struct {
	Head      int     `json:"head"`
	BodyStart int     `json:"body_start"`
	BodyEnd   int     `json:"body_end"`
	Exit      int     `json:"exit"`
	Trip      int64   `json:"trip"`
	IndReg    isa.Reg `json:"ind_reg"`
}

// Transform is one entry of the certificate's transformation log.
type Transform struct {
	Kind string `json:"kind"`
	// PC anchors the in-place kinds (set-elide, fold-*, prune-taken).
	PC int `json:"pc"`
	// Imm is the folded constant for the fold kinds (stored
	// sign-extended; always representable in 32 bits).
	Imm int64 `json:"imm"`
	// Drops is the batch for TDrop (ascending, distinct PCs).
	Drops []Drop `json:"drops,omitempty"`
	// Unroll is the region for TUnroll.
	Unroll *UnrollInfo `json:"unroll,omitempty"`
}

// Certificate is the specialization certificate: the contract shape
// the residual is valid under, the full transformation log (a
// replayable proof script from the general program to the residual),
// and per-instruction provenance back into the general program (and
// through its source map to the IR).
type Certificate struct {
	Name     string          `json:"name"`
	Shape    string          `json:"shape"`
	Contract bounds.Contract `json:"contract"`
	// OrigInstrs and ResidualInstrs pin the endpoint lengths.
	OrigInstrs     int `json:"orig_instrs"`
	ResidualInstrs int `json:"residual_instrs"`
	// Transforms is the ordered log; replaying it from the general
	// program must reproduce the residual exactly.
	Transforms []Transform `json:"transforms"`
	// Provenance maps each residual instruction index to the index of
	// the general-program instruction it descends from.
	Provenance []int `json:"provenance"`
}

// Encode renders the canonical certificate bytes (compact JSON with
// fixed field order, newline-terminated): the form the bundle stores
// and digests.
func (c *Certificate) Encode() ([]byte, error) {
	data, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("peval: encode certificate: %w", err)
	}
	return append(data, '\n'), nil
}

// Digest returns the hex SHA-256 of the canonical certificate bytes.
func (c *Certificate) Digest() (string, error) {
	data, err := c.Encode()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// DecodeCertificate parses canonical certificate bytes.
func DecodeCertificate(data []byte) (*Certificate, error) {
	var c Certificate
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("peval: decode certificate: %w", err)
	}
	return &c, nil
}

// cloneProgram deep-copies a program's instruction stream (the scalar
// metadata copies by value; slices the evaluator never mutates are
// shared).
func cloneProgram(p *isa.Program) *isa.Program {
	q := *p
	q.Instrs = make([]isa.Instr, len(p.Instrs))
	copy(q.Instrs, p.Instrs)
	return &q
}

// identityProv is the provenance of the untransformed program.
func identityProv(n int) []int {
	prov := make([]int, n)
	for i := range prov {
		prov[i] = i
	}
	return prov
}

// elidable reports whether the E hint is legal on the opcode (the
// extent-checked access set).
func elidable(op isa.Opcode) bool {
	switch op {
	case isa.LDG, isa.STG, isa.LDL, isa.STL, isa.ATOMG:
		return true
	}
	return false
}

// ApplyTransform mechanically applies one transform to (a clone of) p,
// maintaining the per-instruction provenance array, and returns the
// rewritten program. It enforces structural integrity only — indices in
// range, opcode shapes, hinted instructions immutable, branch targets
// remappable; whether the transform's semantic side conditions hold is
// the audit's judgment (lint.SpecializeAudit), not this function's.
func ApplyTransform(p *isa.Program, prov []int, t Transform) (*isa.Program, []int, error) {
	if len(prov) != len(p.Instrs) {
		return nil, nil, fmt.Errorf("peval: %s: provenance length %d != %d instructions",
			t.Kind, len(prov), len(p.Instrs))
	}
	switch t.Kind {
	case TSetElide, TFoldCount, TFoldSReg, TFoldConst, TFoldImm, TPruneTaken:
		if t.PC < 0 || t.PC >= len(p.Instrs) {
			return nil, nil, fmt.Errorf("peval: %s: pc %d out of range [0, %d)", t.Kind, t.PC, len(p.Instrs))
		}
		q := cloneProgram(p)
		pr := append([]int(nil), prov...)
		in := &q.Instrs[t.PC]
		switch t.Kind {
		case TSetElide:
			if !elidable(in.Op) {
				return nil, nil, fmt.Errorf("peval: set-elide: pc %d: %s is not an extent-checked access", t.PC, in.Op)
			}
			if in.Hint.E {
				return nil, nil, fmt.Errorf("peval: set-elide: pc %d: E already set", t.PC)
			}
			in.Hint.E = true
		case TFoldCount, TFoldSReg, TFoldConst:
			if in.Hint.A || in.Hint.E {
				return nil, nil, fmt.Errorf("peval: %s: pc %d: hinted instructions are immutable", t.Kind, t.PC)
			}
			if int64(int32(t.Imm)) != t.Imm {
				return nil, nil, fmt.Errorf("peval: %s: pc %d: constant %d not representable in 32 bits", t.Kind, t.PC, t.Imm)
			}
			if !in.WritesDst() {
				return nil, nil, fmt.Errorf("peval: %s: pc %d: %s has no register destination", t.Kind, t.PC, in.Op)
			}
			*in = isa.Instr{
				Op: isa.MOV, Dst: in.Dst,
				Src:  [3]isa.Reg{isa.RZ, isa.RZ, isa.RZ},
				Imm:  int32(t.Imm), HasImm: true,
				Pred: in.Pred, PredNeg: in.PredNeg, Ctl: in.Ctl,
			}
		case TFoldImm:
			if in.Hint.A || in.Hint.E {
				return nil, nil, fmt.Errorf("peval: fold-imm: pc %d: hinted instructions are immutable", t.PC)
			}
			idx := in.Op.ImmSrcIndex()
			if idx < 0 || in.HasImm {
				return nil, nil, fmt.Errorf("peval: fold-imm: pc %d: %s has no free immediate slot", t.PC, in.Op)
			}
			if int64(int32(t.Imm)) != t.Imm {
				return nil, nil, fmt.Errorf("peval: fold-imm: pc %d: constant %d not representable in 32 bits", t.PC, t.Imm)
			}
			in.Imm = int32(t.Imm)
			in.HasImm = true
			in.Src[idx] = isa.RZ
		case TPruneTaken:
			if in.Op != isa.BRA {
				return nil, nil, fmt.Errorf("peval: prune-taken: pc %d: %s is not a branch", t.PC, in.Op)
			}
			if in.Pred == isa.PT && !in.PredNeg {
				return nil, nil, fmt.Errorf("peval: prune-taken: pc %d: branch already unconditional", t.PC)
			}
			in.Pred, in.PredNeg = isa.PT, false
		}
		return q, pr, nil

	case TDrop:
		if len(t.Drops) == 0 {
			return nil, nil, fmt.Errorf("peval: drop: empty batch")
		}
		dropped := make([]bool, len(p.Instrs))
		prev := -1
		for _, d := range t.Drops {
			if d.PC <= prev || d.PC >= len(p.Instrs) {
				return nil, nil, fmt.Errorf("peval: drop: pc %d not ascending in range [0, %d)", d.PC, len(p.Instrs))
			}
			prev = d.PC
			dropped[d.PC] = true
		}
		// newIdx[i] is the post-drop index of instruction i (for a
		// dropped i, the next retained instruction — the fall-through
		// semantics a branch into a dropped pure instruction lands on).
		newIdx := make([]int32, len(p.Instrs)+1)
		n := int32(0)
		for i := range p.Instrs {
			newIdx[i] = n
			if !dropped[i] {
				n++
			}
		}
		newIdx[len(p.Instrs)] = n
		q := *p
		q.Instrs = make([]isa.Instr, 0, int(n))
		pr := make([]int, 0, int(n))
		for i, in := range p.Instrs {
			if dropped[i] {
				continue
			}
			if in.Op == isa.BRA || in.Op == isa.SSY {
				in.Target = newIdx[in.Target]
			}
			q.Instrs = append(q.Instrs, in)
			pr = append(pr, prov[i])
		}
		return &q, pr, nil

	case TUnroll:
		u := t.Unroll
		if u == nil {
			return nil, nil, fmt.Errorf("peval: unroll: missing region")
		}
		h, bs, be := u.Head, u.BodyStart, u.BodyEnd
		if h < 1 || bs != h+4 || be < bs || be >= len(p.Instrs) || u.Exit != be+1 {
			return nil, nil, fmt.Errorf("peval: unroll: malformed region head=%d body=[%d,%d) exit=%d len=%d",
				h, bs, be, u.Exit, len(p.Instrs))
		}
		if u.Trip < 0 {
			return nil, nil, fmt.Errorf("peval: unroll: negative trip %d", u.Trip)
		}
		head := p.Instrs[h]
		if head.Op != isa.SETP ||
			p.Instrs[h+1].Op != isa.SSY || int(p.Instrs[h+1].Target) != u.Exit ||
			p.Instrs[h+2].Op != isa.BRA || int(p.Instrs[h+2].Target) != bs ||
			p.Instrs[h+3].Op != isa.BRA || int(p.Instrs[h+3].Target) != u.Exit ||
			p.Instrs[be].Op != isa.BRA || int(p.Instrs[be].Target) != h {
			return nil, nil, fmt.Errorf("peval: unroll: region at %d does not match the counted-loop shape", h)
		}
		for i := bs; i < be; i++ {
			switch p.Instrs[i].Op {
			case isa.BRA, isa.SSY, isa.EXIT, isa.BAR:
				return nil, nil, fmt.Errorf("peval: unroll: body pc %d: control flow (%s) in loop body", i, p.Instrs[i].Op)
			}
		}
		copyLen := be - bs
		newLen := int(u.Trip)*copyLen + 1
		if newLen > 1<<20 {
			return nil, nil, fmt.Errorf("peval: unroll: region of %d instructions exceeds the structural bound", newLen)
		}
		oldLen := be - h + 1
		delta := int32(newLen - oldLen)
		remap := func(tgt int32) (int32, error) {
			switch {
			case int(tgt) <= h:
				return tgt, nil
			case int(tgt) > be:
				return tgt + delta, nil
			default:
				return 0, fmt.Errorf("peval: unroll: branch target %d enters the unrolled region", tgt)
			}
		}
		q := *p
		q.Instrs = make([]isa.Instr, 0, len(p.Instrs)+int(delta))
		pr := make([]int, 0, len(p.Instrs)+int(delta))
		appendRemapped := func(i int) error {
			in := p.Instrs[i]
			if in.Op == isa.BRA || in.Op == isa.SSY {
				tgt, err := remap(in.Target)
				if err != nil {
					return fmt.Errorf("%w (at pc %d)", err, i)
				}
				in.Target = tgt
			}
			q.Instrs = append(q.Instrs, in)
			pr = append(pr, prov[i])
			return nil
		}
		for i := 0; i < h; i++ {
			if err := appendRemapped(i); err != nil {
				return nil, nil, err
			}
		}
		for k := int64(0); k < u.Trip; k++ {
			for i := bs; i < be; i++ {
				q.Instrs = append(q.Instrs, p.Instrs[i])
				pr = append(pr, prov[i])
			}
		}
		// The original guard SETP runs once more after the last copy:
		// the loop exits with the guard predicate freshly computed
		// false, and the residual must leave the identical predicate
		// state behind.
		q.Instrs = append(q.Instrs, head)
		pr = append(pr, prov[h])
		for i := be + 1; i < len(p.Instrs); i++ {
			if err := appendRemapped(i); err != nil {
				return nil, nil, err
			}
		}
		return &q, pr, nil

	default:
		return nil, nil, fmt.Errorf("peval: unknown transform kind %q", t.Kind)
	}
}
