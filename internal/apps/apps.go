// Package apps contains complete, verified GPU algorithms written
// against the IR builder — the kind of kernels a downstream user of the
// library would write. Each builder returns a kernel whose output is
// checked bit-for-bit against a host Go reference implementation by the
// package tests, executed under the LMI mechanism (so the entire
// pipeline — builder, compiler passes, hint bits, tagged pointers, OCU,
// EC, SIMT divergence, shared memory, barriers, atomics — is exercised
// by real workloads rather than synthetic mixes).
package apps

import (
	"lmi/internal/bounds"
	"lmi/internal/ir"
	"lmi/internal/isa"
)

// MatMulTiled builds the classic shared-memory-tiled matrix multiply
// C = A x B for n x n float32 matrices, with tile x tile thread blocks.
// n must be a multiple of tile. Launch with Launch2D(n/tile, n/tile,
// tile, tile). Parameters: A, B, C (global), n (i32).
func MatMulTiled(tile int) *ir.Func {
	b := ir.NewBuilder("matmul_tiled")
	A := b.Param(ir.PtrGlobal)
	B := b.Param(ir.PtrGlobal)
	C := b.Param(ir.PtrGlobal)
	n := b.Param(ir.I32)

	ts := int64(tile)
	As := b.Shared(uint64(tile * tile * 4))
	Bs := b.Shared(uint64(tile * tile * 4))

	tx, ty := b.TID(), b.TIDY()
	x := b.Add(b.Mul(b.CTAID(), b.ConstI(ir.I32, ts)), tx)
	y := b.Add(b.Mul(b.CTAIDY(), b.ConstI(ir.I32, ts)), ty)

	acc := b.Var(b.ConstF(0))
	tiles := b.Shr(n, b.ConstI(ir.I32, log2i(tile)))
	b.For(tiles, func(t ir.Value) {
		// As[ty][tx] = A[y][t*tile+tx]; Bs[ty][tx] = B[t*tile+ty][x].
		acol := b.Add(b.Mul(t, b.ConstI(ir.I32, ts)), tx)
		brow := b.Add(b.Mul(t, b.ConstI(ir.I32, ts)), ty)
		av := b.Load(ir.F32, b.GEP(A, b.Add(b.Mul(y, n), acol), 4, 0), 0)
		bv := b.Load(ir.F32, b.GEP(B, b.Add(b.Mul(brow, n), x), 4, 0), 0)
		sIdx := b.Add(b.Mul(ty, b.ConstI(ir.I32, ts)), tx)
		b.Store(b.GEP(As, sIdx, 4, 0), av, 0)
		b.Store(b.GEP(Bs, sIdx, 4, 0), bv, 0)
		b.Barrier()
		b.For(b.ConstI(ir.I32, ts), func(k ir.Value) {
			a := b.Load(ir.F32, b.GEP(As, b.Add(b.Mul(ty, b.ConstI(ir.I32, ts)), k), 4, 0), 0)
			bb := b.Load(ir.F32, b.GEP(Bs, b.Add(b.Mul(k, b.ConstI(ir.I32, ts)), tx), 4, 0), 0)
			b.Assign(acc, b.FFMA(a, bb, acc))
		})
		b.Barrier()
	})
	b.Store(b.GEP(C, b.Add(b.Mul(y, n), x), 4, 0), acc, 0)
	return b.MustFinish()
}

// ReduceSum builds a block-tree integer sum reduction: each thread
// accumulates a grid-stride slice of in[0..n), blocks tree-reduce through
// shared memory, and thread 0 of each block atomically adds its partial
// sum into out[0]. Launch 1-D with a power-of-two block size.
// Parameters: in, out (global), n (i32).
func ReduceSum(blockSize int) *ir.Func {
	b := ir.NewBuilder("reduce_sum")
	in := b.Param(ir.PtrGlobal)
	out := b.Param(ir.PtrGlobal)
	n := b.Param(ir.I32)

	sh := b.Shared(uint64(blockSize * 4))
	tid := b.TID()
	gtid := b.GlobalTID()
	nthreads := b.Mul(b.NTID(), b.Special(isa.SRNctaidX))

	// Grid-stride accumulation.
	acc := b.Var(b.ConstI(ir.I32, 0))
	i := b.Var(gtid)
	b.While(func() ir.Value { return b.ICmp(isa.CmpLT, i, n) }, func() {
		b.Assign(acc, b.Add(acc, b.Load(ir.I32, b.GEP(in, i, 4, 0), 0)))
		b.Assign(i, b.Add(i, nthreads))
	})
	b.Store(b.GEP(sh, tid, 4, 0), acc, 0)
	b.Barrier()

	// Tree reduction.
	stride := b.Var(b.ConstI(ir.I32, int64(blockSize/2)))
	zero := b.ConstI(ir.I32, 0)
	b.While(func() ir.Value { return b.ICmp(isa.CmpGT, stride, zero) }, func() {
		b.If(b.ICmp(isa.CmpLT, tid, stride), func() {
			mine := b.Load(ir.I32, b.GEP(sh, tid, 4, 0), 0)
			other := b.Load(ir.I32, b.GEP(sh, b.Add(tid, stride), 4, 0), 0)
			b.Store(b.GEP(sh, tid, 4, 0), b.Add(mine, other), 0)
		}, nil)
		b.Barrier()
		b.Assign(stride, b.Shr(stride, b.ConstI(ir.I32, 1)))
	})
	b.If(b.ICmp(isa.CmpEQ, tid, zero), func() {
		b.AtomicAdd(out, b.Load(ir.I32, sh, 0), 0)
	}, nil)
	return b.MustFinish()
}

// BFSLevel builds one level-synchronous BFS sweep over a CSR graph: one
// thread per vertex v; if dist[v] == level, every unvisited neighbour
// gets dist = level+1 and the change flag is raised. The host relaunches
// per level until the flag stays zero. Parameters: rowPtr, colIdx, dist,
// changed (global), numVerts (i32), level (i32). Unvisited = -1.
func BFSLevel() *ir.Func {
	b := ir.NewBuilder("bfs_level")
	rowPtr := b.Param(ir.PtrGlobal)
	colIdx := b.Param(ir.PtrGlobal)
	dist := b.Param(ir.PtrGlobal)
	changed := b.Param(ir.PtrGlobal)
	numVerts := b.Param(ir.I32)
	level := b.Param(ir.I32)

	v := b.GlobalTID()
	b.If(b.ICmp(isa.CmpLT, v, numVerts), func() {
		dv := b.Load(ir.I32, b.GEP(dist, v, 4, 0), 0)
		b.If(b.ICmp(isa.CmpEQ, dv, level), func() {
			start := b.Load(ir.I32, b.GEP(rowPtr, v, 4, 0), 0)
			end := b.Load(ir.I32, b.GEP(rowPtr, v, 4, 4), 0)
			e := b.Var(start)
			b.While(func() ir.Value { return b.ICmp(isa.CmpLT, e, end) }, func() {
				u := b.Load(ir.I32, b.GEP(colIdx, e, 4, 0), 0)
				du := b.Load(ir.I32, b.GEP(dist, u, 4, 0), 0)
				b.If(b.ICmp(isa.CmpEQ, du, b.ConstI(ir.I32, -1)), func() {
					b.Store(b.GEP(dist, u, 4, 0), b.Add(level, b.ConstI(ir.I32, 1)), 0)
					b.Store(changed, b.ConstI(ir.I32, 1), 0)
				}, nil)
				b.Assign(e, b.Add(e, b.ConstI(ir.I32, 1)))
			})
		}, nil)
	}, nil)
	return b.MustFinish()
}

// Stencil2D builds one Jacobi sweep of the 5-point averaging stencil on
// a w x h float32 grid: out[y][x] = 0.25*(in up/down/left/right) for
// interior points, with borders copied through. Launch 2-D covering
// (w, h). Parameters: in, out (global), w (i32), h (i32).
func Stencil2D() *ir.Func {
	b := ir.NewBuilder("stencil2d")
	in := b.Param(ir.PtrGlobal)
	out := b.Param(ir.PtrGlobal)
	w := b.Param(ir.I32)
	h := b.Param(ir.I32)

	x, y := b.GlobalXY()
	one := b.ConstI(ir.I32, 1)
	inX := b.ICmp(isa.CmpLT, x, w)
	b.If(inX, func() {
		inY := b.ICmp(isa.CmpLT, y, h)
		b.If(inY, func() {
			idx := b.Add(b.Mul(y, w), x)
			// Interior test as four explicit bound checks folding into a
			// flag (the IR has no boolean conjunction).
			isInterior := b.Var(b.ConstI(ir.I32, 1))
			b.If(b.ICmp(isa.CmpLT, x, one), func() { b.Assign(isInterior, b.ConstI(ir.I32, 0)) }, nil)
			b.If(b.ICmp(isa.CmpGE, x, b.Sub(w, one)), func() { b.Assign(isInterior, b.ConstI(ir.I32, 0)) }, nil)
			b.If(b.ICmp(isa.CmpLT, y, one), func() { b.Assign(isInterior, b.ConstI(ir.I32, 0)) }, nil)
			b.If(b.ICmp(isa.CmpGE, y, b.Sub(h, one)), func() { b.Assign(isInterior, b.ConstI(ir.I32, 0)) }, nil)
			b.If(b.ICmp(isa.CmpEQ, isInterior, one), func() {
				up := b.Load(ir.F32, b.GEP(in, b.Add(b.Mul(b.Sub(y, one), w), x), 4, 0), 0)
				down := b.Load(ir.F32, b.GEP(in, b.Add(b.Mul(b.Add(y, one), w), x), 4, 0), 0)
				left := b.Load(ir.F32, b.GEP(in, b.Sub(idx, one), 4, 0), 0)
				right := b.Load(ir.F32, b.GEP(in, b.Add(idx, one), 4, 0), 0)
				sum := b.FAdd(b.FAdd(up, down), b.FAdd(left, right))
				b.Store(b.GEP(out, idx, 4, 0), b.FMul(sum, b.ConstF(0.25)), 0)
			}, func() {
				b.Store(b.GEP(out, idx, 4, 0), b.Load(ir.F32, b.GEP(in, idx, 4, 0), 0), 0)
			})
		}, nil)
	}, nil)
	return b.MustFinish()
}

func log2i(x int) int64 {
	n := int64(0)
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

// All returns one instance of every app kernel at the representative
// configurations the package tests exercise, for tools (the static
// linter, the compile CLI) that sweep the whole in-tree kernel corpus.
func All() []*ir.Func {
	return []*ir.Func{
		MatMulTiled(8),
		ReduceSum(128),
		BFSLevel(),
		Stencil2D(),
	}
}

// Contracts returns the canonical launch contract of each All() kernel,
// index-aligned: the geometry the package tests launch with, which the
// static analyses (elide proving, race analysis) assume. None of the
// app kernels carries an element-count parameter contract.
func Contracts() []bounds.Contract {
	return []bounds.Contract{
		{CountParam: -1, BlockDimX: 8, BlockDimY: 8, GridDimX: 4, GridDimY: 4},
		{CountParam: -1, BlockDimX: 128, GridDimX: 48},
		{CountParam: -1, BlockDimX: 128, GridDimX: 48},
		{CountParam: -1, BlockDimX: 16, BlockDimY: 16, GridDimX: 8, GridDimY: 8},
	}
}
