package apps

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"lmi/internal/compiler"
	"lmi/internal/ir"
	"lmi/internal/safety"
	"lmi/internal/sim"
)

func f32Bytes(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

func i32Bytes(v []int32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(x))
	}
	return out
}

func readF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func readI32(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// TestMatMulTiledMatchesReference verifies the tiled matmul against the
// host reference, bit for bit, under LMI.
func TestMatMulTiledMatchesReference(t *testing.T) {
	const n, tile = 32, 8
	r := rand.New(rand.NewSource(1))
	a := make([]float32, n*n)
	bm := make([]float32, n*n)
	for i := range a {
		// Small integer-valued floats keep FFMA associativity exact, so
		// device and host sums agree bit for bit.
		a[i] = float32(r.Intn(8))
		bm[i] = float32(r.Intn(8))
	}
	// Host reference (k-inner order matches the kernel's accumulation
	// order, so float rounding is identical).
	want := make([]float32, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			var acc float32
			for k := 0; k < n; k++ {
				acc = a[y*n+k]*bm[k*n+x] + acc
			}
			want[y*n+x] = acc
		}
	}

	f := MatMulTiled(tile)
	prog, err := compiler.Compile(f, compiler.ModeLMI)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := sim.NewDevice(sim.ScaledConfig(2), safety.NewLMI())
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := dev.Malloc(4 * n * n)
	pb, _ := dev.Malloc(4 * n * n)
	pc, _ := dev.Malloc(4 * n * n)
	dev.WriteGlobal(pa, f32Bytes(a))
	dev.WriteGlobal(pb, f32Bytes(bm))
	st, err := dev.Launch2D(prog, n/tile, n/tile, tile, tile, []uint64{pa, pb, pc, n})
	if err != nil {
		t.Fatal(err)
	}
	if st.Halted || len(st.Faults) > 0 {
		t.Fatalf("faulted: %+v", st.Faults)
	}
	got := readF32(dev.ReadGlobal(pc, 4*n*n))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("C[%d,%d] = %v, want %v", i/n, i%n, got[i], want[i])
		}
	}
	if st.PointerChecks == 0 {
		t.Error("matmul ran without OCU checks under LMI")
	}
}

// TestReduceSumMatchesReference verifies the tree reduction + atomics.
func TestReduceSumMatchesReference(t *testing.T) {
	const n, block, grid = 10000, 128, 6
	r := rand.New(rand.NewSource(2))
	in := make([]int32, n)
	var want int32
	for i := range in {
		in[i] = int32(r.Intn(1000) - 500)
		want += in[i]
	}
	f := ReduceSum(block)
	prog, err := compiler.Compile(f, compiler.ModeLMI)
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := sim.NewDevice(sim.ScaledConfig(2), safety.NewLMI())
	pin, _ := dev.Malloc(4 * n)
	pout, _ := dev.Malloc(64)
	dev.WriteGlobal(pin, i32Bytes(in))
	st, err := dev.Launch(prog, grid, block, []uint64{pin, pout, n})
	if err != nil {
		t.Fatal(err)
	}
	if st.Halted || len(st.Faults) > 0 {
		t.Fatalf("faulted: %+v", st.Faults)
	}
	got := readI32(dev.ReadGlobal(pout, 4))[0]
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

// TestBFSMatchesReference runs level-synchronous BFS on a random sparse
// graph across multiple kernel launches and compares all distances.
func TestBFSMatchesReference(t *testing.T) {
	const nv = 300
	r := rand.New(rand.NewSource(3))
	// Random graph: each vertex gets 1-5 out-edges; plus a chain so a
	// long BFS frontier exists.
	adj := make([][]int32, nv)
	for v := 0; v < nv; v++ {
		if v+1 < nv {
			adj[v] = append(adj[v], int32(v+1))
		}
		for k := r.Intn(5); k > 0; k-- {
			adj[v] = append(adj[v], int32(r.Intn(nv)))
		}
	}
	rowPtr := make([]int32, nv+1)
	var colIdx []int32
	for v := 0; v < nv; v++ {
		rowPtr[v] = int32(len(colIdx))
		colIdx = append(colIdx, adj[v]...)
	}
	rowPtr[nv] = int32(len(colIdx))

	// Host BFS.
	want := make([]int32, nv)
	for i := range want {
		want[i] = -1
	}
	want[0] = 0
	queue := []int32{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if want[u] == -1 {
				want[u] = want[v] + 1
				queue = append(queue, u)
			}
		}
	}

	// Device BFS: one launch per level until the change flag stays 0.
	f := BFSLevel()
	prog, err := compiler.Compile(f, compiler.ModeLMI)
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := sim.NewDevice(sim.ScaledConfig(2), safety.NewLMI())
	pRow, _ := dev.Malloc(uint64(4 * (nv + 1)))
	pCol, _ := dev.Malloc(uint64(4 * len(colIdx)))
	pDist, _ := dev.Malloc(4 * nv)
	pChanged, _ := dev.Malloc(64)
	dev.WriteGlobal(pRow, i32Bytes(rowPtr))
	dev.WriteGlobal(pCol, i32Bytes(colIdx))
	dist := make([]int32, nv)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	dev.WriteGlobal(pDist, i32Bytes(dist))

	for level := int32(0); level < nv; level++ {
		dev.WriteGlobal(pChanged, []byte{0, 0, 0, 0})
		st, err := dev.Launch(prog, (nv+127)/128, 128, []uint64{
			pRow, pCol, pDist, pChanged, nv, uint64(uint32(level))})
		if err != nil {
			t.Fatal(err)
		}
		if st.Halted || len(st.Faults) > 0 {
			t.Fatalf("level %d faulted: %+v", level, st.Faults)
		}
		if readI32(dev.ReadGlobal(pChanged, 4))[0] == 0 {
			break
		}
	}
	got := readI32(dev.ReadGlobal(pDist, 4*nv))
	for v := 0; v < nv; v++ {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

// TestStencil2DMatchesReference verifies the 2-D Jacobi sweep.
func TestStencil2DMatchesReference(t *testing.T) {
	const w, h = 48, 24
	r := rand.New(rand.NewSource(4))
	in := make([]float32, w*h)
	for i := range in {
		in[i] = float32(r.Intn(64)) // quarter-exact values
	}
	want := make([]float32, w*h)
	copy(want, in)
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			want[y*w+x] = 0.25 * ((in[(y-1)*w+x] + in[(y+1)*w+x]) + (in[y*w+x-1] + in[y*w+x+1]))
		}
	}

	f := Stencil2D()
	prog, err := compiler.Compile(f, compiler.ModeLMI)
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := sim.NewDevice(sim.ScaledConfig(2), safety.NewLMI())
	pin, _ := dev.Malloc(4 * w * h)
	pout, _ := dev.Malloc(4 * w * h)
	dev.WriteGlobal(pin, f32Bytes(in))
	st, err := dev.Launch2D(prog, (w+15)/16, (h+7)/8, 16, 8, []uint64{pin, pout, w, h})
	if err != nil {
		t.Fatal(err)
	}
	if st.Halted || len(st.Faults) > 0 {
		t.Fatalf("faulted: %+v", st.Faults)
	}
	got := readF32(dev.ReadGlobal(pout, 4*w*h))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out[%d,%d] = %v, want %v", i/w, i%w, got[i], want[i])
		}
	}
}

// TestAppsRejectNothingUnderAnalysis: the real kernels satisfy the LMI
// compile-time restrictions (no int<->ptr casts, no in-memory pointers).
func TestAppsRejectNothingUnderAnalysis(t *testing.T) {
	for _, f := range []*ir.Func{MatMulTiled(8), ReduceSum(64), BFSLevel(), Stencil2D()} {
		facts, err := compiler.Analyze(f)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if len(facts.Casts) != 0 || len(facts.PtrStores) != 0 {
			t.Errorf("%s: violates LMI restrictions", f.Name)
		}
		if _, err := compiler.Compile(f, compiler.ModeBase); err != nil {
			t.Errorf("%s base compile: %v", f.Name, err)
		}
	}
}
