module lmi

go 1.22
