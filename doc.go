// Package lmi is a from-scratch reproduction of "Let-Me-In: (Still)
// Employing In-pointer Bounds Metadata for Fine-grained GPU Memory
// Safety" (HPCA 2025).
//
// The repository contains the paper's mechanism and every substrate its
// evaluation depends on, built in pure Go with the standard library only:
//
//   - internal/core — the LMI pointer codec, Overflow Checking Unit,
//     Extent Checker, and pointer-liveness tracker;
//   - internal/isa, internal/ir, internal/compiler — a SASS-like ISA with
//     the 128-bit microcode hint bits, a typed IR, and the LMI compiler
//     passes (pointer-operand analysis, 2^n stack layout, extent
//     nullification, Baggy/DBI instrumentation);
//   - internal/mem, internal/alloc, internal/sim — the cycle-level GPU
//     simulator (SMs, GTO schedulers, SIMT stack, coalescer, caches,
//     DRAM) and the 2^n-aligned allocators;
//   - internal/safety — LMI, GPUShield, and Baggy Bounds as pluggable
//     mechanisms;
//   - internal/workloads, internal/sectest, internal/hwcost,
//     internal/experiments — the Table V benchmark suite, the Table III
//     security scenarios, the Table VI gate model, and the harness that
//     regenerates every figure and table;
//   - internal/runner — the deterministic fan-out executor the sweeps
//     run on: a bounded worker pool with submission-ordered results and
//     a per-run timing/throughput report.
//
// The root-level benchmarks (bench_test.go) regenerate each evaluation
// result; see EXPERIMENTS.md for paper-vs-measured and DESIGN.md for the
// system inventory.
package lmi
