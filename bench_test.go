package lmi

// The repository's benchmark harness: one benchmark per table and figure
// of the paper's evaluation. Each runs the corresponding experiment once
// per iteration (iterations take seconds, so go test -bench runs them
// once) and reports the headline numbers as custom metrics so
// bench_output.txt doubles as the reproduction record.

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"lmi/internal/chaos"
	"lmi/internal/compiler"
	"lmi/internal/experiments"
	"lmi/internal/fastsim"
	"lmi/internal/hwcost"
	"lmi/internal/runner"
	"lmi/internal/safety"
	"lmi/internal/sectest"
	"lmi/internal/sim"
	"lmi/internal/workloads"
)

// writeBenchReport emits a sweep's runner report as BENCH_<name>.json in
// the directory named by LMI_BENCH_JSON, so bench runs leave trajectory
// points next to bench_output.txt. Unset (the default) writes nothing,
// keeping `go test -bench` hermetic. It is called on failing sweeps too
// (the experiments return their partial report alongside the error), so
// a mid-sweep failure still leaves a trajectory point recording it.
func writeBenchReport(b *testing.B, name string, rep *runner.Report) {
	b.Helper()
	dir := os.Getenv("LMI_BENCH_JSON")
	if dir == "" || rep == nil {
		return
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	if err := runner.WriteJSONFile(path, []*runner.Report{rep}); err != nil {
		b.Errorf("write %s: %v", path, err)
	}
}

// BenchmarkFig01MemoryRegionMix regenerates Fig. 1: the dynamic
// LDG/STG / LDS/STS / LDL/STL instruction shares per benchmark. Reported
// metrics are the shared-memory shares of the paper's two anchors.
func BenchmarkFig01MemoryRegionMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig01(experiments.SimConfig())
		if err != nil {
			if res != nil {
				writeBenchReport(b, "fig01", res.Report)
			}
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			switch r.Name {
			case "lud_cuda":
				b.ReportMetric(r.Shared, "lud-shared-share")
			case "needle":
				b.ReportMetric(r.Shared, "needle-shared-share")
			case "bert":
				b.ReportMetric(r.Global, "bert-global-share")
			}
		}
		if i == 0 {
			b.Log("\n" + res.Table())
			writeBenchReport(b, "fig01", res.Report)
		}
	}
}

// BenchmarkFig04Fragmentation regenerates Fig. 4: peak-RSS overhead of
// 2^n-aligned allocation (paper: backprop 85.9%, needle 92.9%, geomean
// 18.73%).
func BenchmarkFig04Fragmentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig04()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Geomean, "geomean-overhead")
		for _, r := range res.Rows {
			if r.Name == "backprop" {
				b.ReportMetric(r.Overhead, "backprop-overhead")
			}
			if r.Name == "needle" {
				b.ReportMetric(r.Overhead, "needle-overhead")
			}
		}
		if i == 0 {
			b.Log("\n" + res.Table())
		}
	}
}

// BenchmarkTable3SecurityCoverage regenerates Table III: the 38-scenario
// security suite against GMOD, GPUShield, cuCatch, LMI, and LMI with
// §XII-C liveness tracking.
func BenchmarkTable3SecurityCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sectest.RunTable3()
		if err != nil {
			b.Fatal(err)
		}
		sd, st, td, tt := res.Coverage(sectest.ColLMI)
		b.ReportMetric(float64(sd)/float64(st), "lmi-spatial-coverage")
		b.ReportMetric(float64(td)/float64(tt), "lmi-temporal-coverage")
		if i == 0 {
			b.Log("\n" + res.Table())
		}
	}
}

// BenchmarkChaosCampaign runs the fixed-seed fault-injection campaign
// (the robustness counterpart of Table III: injected metadata corruption
// instead of scripted violations) and reports the detection matrix's
// headline counts. The trial mix is deterministic, so these metrics are
// exact reproduction targets, not samples.
func BenchmarkChaosCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := chaos.Campaign{Seed: 1, Trials: 4}.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		counts := map[chaos.Outcome]int{}
		for _, tr := range rep.Trials {
			counts[tr.Outcome]++
		}
		b.ReportMetric(float64(len(rep.Trials)), "chaos-trials")
		b.ReportMetric(float64(counts[chaos.OutcomeDetected]), "chaos-detected")
		b.ReportMetric(float64(len(rep.Undetected())), "chaos-undetected")
		b.ReportMetric(float64(rep.FalsePositives()), "chaos-false-positives")
		b.ReportMetric(float64(rep.Degraded()), "chaos-degraded")
		if i == 0 {
			b.Log("\n" + rep.Render(false))
		}
		if rep.Degraded() > 0 {
			b.Fatalf("campaign degraded %d trials", rep.Degraded())
		}
	}
}

// BenchmarkFig12HardwareMechanisms regenerates Fig. 12: normalized
// execution time of Baggy Bounds, GPUShield, and LMI over the 28-bench
// suite (paper: LMI 0.22% avg; GPUShield low with needle 42.5% / LSTM
// 24%; Baggy 87% avg, 503% peak).
func BenchmarkFig12HardwareMechanisms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(experiments.SimConfig())
		if err != nil {
			if res != nil {
				writeBenchReport(b, "fig12", res.Report)
			}
			b.Fatal(err)
		}
		b.ReportMetric(res.LMIMean, "lmi-geomean")
		b.ReportMetric(res.GPUShieldMean, "gpushield-geomean")
		b.ReportMetric(res.BaggyMean, "baggy-geomean")
		b.ReportMetric(res.BaggyPeak, "baggy-peak")
		if i == 0 {
			b.Log("\n" + res.Table())
			writeBenchReport(b, "fig12", res.Report)
		}
	}
}

// BenchmarkFig13DBIMechanisms regenerates Fig. 13: the DBI
// implementation of LMI versus Compute Sanitizer memcheck over the 24
// non-AD benchmarks (paper: 72.95x and 32.98x geomean).
func BenchmarkFig13DBIMechanisms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(experiments.SimConfig())
		if err != nil {
			if res != nil {
				writeBenchReport(b, "fig13", res.Report)
			}
			b.Fatal(err)
		}
		b.ReportMetric(res.LMIDBIMean, "lmi-dbi-geomean")
		b.ReportMetric(res.MemcheckMean, "memcheck-geomean")
		if i == 0 {
			b.Log("\n" + res.Table())
			writeBenchReport(b, "fig13", res.Report)
		}
	}
}

// BenchmarkElision measures static extent-check elision: the 28-bench
// suite under plain LMI and under LMI with the bounds analysis's proven
// checks elided (E hint). Reported metrics are the mean dynamic
// checks-elided fraction, the cycle-ratio geomean, and the total EC
// energy the skipped evaluations save under the hwcost model.
func BenchmarkElision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Elide(experiments.SimConfig())
		if err != nil {
			if res != nil {
				writeBenchReport(b, "elide", res.Report)
			}
			b.Fatal(err)
		}
		b.ReportMetric(res.ElidedFracMean, "elided-frac-mean")
		b.ReportMetric(res.CycleDeltaMean, "elide-cycle-geomean")
		b.ReportMetric(res.ECEnergySavedNJ, "ec-energy-saved-nJ")
		if i == 0 {
			b.Log("\n" + res.Table())
			writeBenchReport(b, "elide", res.Report)
		}
	}
}

// BenchmarkCompiledTierSpeedup runs the Fig. 12 sweep (the repo's
// heaviest) on the cycle tier and on the compiled fast-path tier and
// reports the wall-clock speedup — the tentpole's >= 5x throughput
// target — plus the compiled sweep's simulated-work rate. Both sweeps'
// reports land as BENCH_fig12_cycle.json / BENCH_fig12_compiled.json
// when LMI_BENCH_JSON is set, recording the before/after trajectory.
func BenchmarkCompiledTierSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.SimConfig()
		cyc, err := experiments.Fig12JobsTier(cfg, 0, fastsim.TierCycle)
		if err != nil {
			b.Fatal(err)
		}
		fast, err := experiments.Fig12JobsTier(cfg, 0, fastsim.TierCompiled)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cyc.Report.Wall.Seconds()/fast.Report.Wall.Seconds(), "compiled-tier-speedup")
		if i == 0 {
			writeBenchReport(b, "fig12_cycle", cyc.Report)
			writeBenchReport(b, "fig12_compiled", fast.Report)
		}
	}
}

// BenchmarkTable2MechanismComparison regenerates Table II from the live
// security run (overhead cells quote Fig. 12; run that benchmark for the
// measured values).
func BenchmarkTable2MechanismComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.RenderTable2(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

// BenchmarkTable6HardwareCost regenerates Table VI and the §XI-C
// synthesis result (paper: 153 GE/thread, 0.63 ns, 1.587 GHz, 2 register
// slices at 3 GHz).
func BenchmarkTable6HardwareCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ocu := hwcost.OCU()
		b.ReportMetric(ocu.TotalGE(), "ocu-GE")
		b.ReportMetric(float64(ocu.CriticalPathPs()), "ocu-path-ps")
		b.ReportMetric(float64(ocu.PipelineLatencyCycles(3.0)), "ocu-latency-cycles-3GHz")
		if i == 0 {
			b.Log("\n" + hwcost.RenderTable6(3.0))
		}
	}
}

// BenchmarkAblationOCULatency quantifies the cost of the OCU's
// register-slice latency in isolation (DESIGN.md ablation): needle under
// LMI compared against a hypothetical zero-latency OCU. The residual
// delta at zero latency is the simulation noise floor for Fig. 12.
func BenchmarkAblationOCULatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.SimConfig()
		s := workloads.ByName("gaussian")
		base, err := workloads.Run(s, workloads.VariantBase, cfg)
		if err != nil {
			b.Fatal(err)
		}
		lmi, err := workloads.Run(s, workloads.VariantLMI, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(lmi.Cycles)/float64(base.Cycles), "gaussian-lmi-3cyc")
		b.ReportMetric(float64(lmi.PointerChecks), "ocu-checks")
	}
}

// BenchmarkAblationOptimizedCodegen re-measures LMI's relative overhead
// on peephole-optimized code (DESIGN.md ablation: the evaluation uses
// the naive generator output for all mechanisms; this shows the relative
// result is insensitive to codegen quality).
func BenchmarkAblationOptimizedCodegen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.SimConfig()
		for _, name := range []string{"nn", "hotspot"} {
			s := workloads.ByName(name)
			run := func(v workloads.Variant) uint64 {
				prog, err := s.Compile(v)
				if err != nil {
					b.Fatal(err)
				}
				prog = compiler.Optimize(prog)
				dev, err := sim.NewDevice(cfg, workloads.NewMechanism(v))
				if err != nil {
					b.Fatal(err)
				}
				in, _ := dev.Malloc(s.N * 4)
				out, _ := dev.Malloc(s.N * 4)
				st, err := dev.Launch(prog, s.Grid, s.Block, []uint64{in, out, s.N})
				if err != nil {
					b.Fatal(err)
				}
				if st.Halted {
					b.Fatalf("%s/%s halted", name, v)
				}
				return st.Cycles
			}
			base := run(workloads.VariantBase)
			lmi := run(workloads.VariantLMI)
			b.ReportMetric(float64(lmi)/float64(base), name+"-optimized-lmi")
		}
	}
}

// BenchmarkAblationPageInvalidOpt measures Algorithm 1's membership-table
// population with and without the pageInvalidOpt optimisation (§XII-C):
// large allocations move from table entries to page invalidations.
func BenchmarkAblationPageInvalidOpt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.SimConfig()
		for _, opt := range []bool{false, true} {
			mech := safety.NewLMIWithTracking(opt)
			dev, err := sim.NewDevice(cfg, mech)
			if err != nil {
				b.Fatal(err)
			}
			// A mixed allocation pattern: many small buffers (stay in the
			// table) plus large ones (dedicated pages under the opt).
			var ptrs []uint64
			for k := 0; k < 64; k++ {
				p, err := dev.Malloc(512) // small: always tabled
				if err != nil {
					b.Fatal(err)
				}
				ptrs = append(ptrs, p)
				q, err := dev.Malloc(256 << 10) // large: pages under opt
				if err != nil {
					b.Fatal(err)
				}
				ptrs = append(ptrs, q)
			}
			stats := mech.Tracker.Stats()
			suffix := "-tableonly"
			if opt {
				suffix = "-pageinvalid"
			}
			b.ReportMetric(float64(stats.Entries), "entries"+suffix)
			for _, p := range ptrs {
				if err := dev.Free(p); err != nil {
					b.Fatal(err)
				}
			}
			if opt {
				b.ReportMetric(float64(mech.Tracker.Stats().PagesInvalidated), "pages-invalidated")
			}
		}
	}
}
