// Quickstart: build a kernel, compile it with LMI support, run it on the
// simulated GPU, and watch the hardware catch an out-of-bounds access.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"lmi/internal/compiler"
	"lmi/internal/ir"
	"lmi/internal/isa"
	"lmi/internal/safety"
	"lmi/internal/sim"
)

func main() {
	// 1. Write a kernel: C[i] = A[i] + B[i], one element per thread.
	b := ir.NewBuilder("vecadd")
	A := b.Param(ir.PtrGlobal)
	B := b.Param(ir.PtrGlobal)
	C := b.Param(ir.PtrGlobal)
	n := b.Param(ir.I32)
	i := b.GlobalTID()
	b.If(b.ICmp(isa.CmpLT, i, n), func() {
		av := b.Load(ir.F32, b.GEP(A, i, 4, 0), 0)
		bv := b.Load(ir.F32, b.GEP(B, i, 4, 0), 0)
		b.Store(b.GEP(C, i, 4, 0), b.FAdd(av, bv), 0)
	}, nil)
	kernel := b.MustFinish()

	// 2. Compile with LMI support: 2^n stack layout, pointer-operation
	// hint bits, extent tagging.
	prog, err := compiler.Compile(kernel, compiler.ModeLMI)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %s: %d instructions, %d OCU-hinted\n",
		prog.Name, len(prog.Instrs), prog.CountHinted())

	// 3. Create a device with the LMI mechanism and allocate buffers.
	// Malloc returns extent-tagged pointers (try printing one!).
	dev, err := sim.NewDevice(sim.ScaledConfig(2), safety.NewLMI())
	if err != nil {
		log.Fatal(err)
	}
	const N = 1024
	pa, _ := dev.Malloc(4 * N)
	pb, _ := dev.Malloc(4 * N)
	pc, _ := dev.Malloc(4 * N)
	fmt.Printf("A = %v (extent %d -> %d-byte class)\n",
		fmtPtr(pa), pa>>59, uint64(256)<<(pa>>59-1))

	host := make([]byte, 4*N)
	for k := 0; k < N; k++ {
		binary.LittleEndian.PutUint32(host[4*k:], math.Float32bits(float32(k)))
	}
	dev.WriteGlobal(pa, host)
	dev.WriteGlobal(pb, host)

	// 4. Launch.
	st, err := dev.Launch(prog, 8, 128, []uint64{pa, pb, pc, N})
	if err != nil {
		log.Fatal(err)
	}
	out := dev.ReadGlobal(pc, 4*N)
	last := math.Float32frombits(binary.LittleEndian.Uint32(out[4*(N-1):]))
	fmt.Printf("ran in %d cycles; C[%d] = %v (want %v)\n", st.Cycles, N-1, last, float32(2*(N-1)))

	// 5. Now pass a poisoned length: thread 1024 would write C[1024],
	// one element past the buffer. The OCU clears the pointer's extent
	// at the out-of-bounds GEP and the EC faults at the store.
	st, err = dev.Launch(prog, 9, 128, []uint64{pa, pb, pc, N + 1})
	if err != nil {
		log.Fatal(err)
	}
	if f := st.FirstFault(); f != nil {
		fmt.Printf("LMI caught it: %v\n", f)
	} else {
		log.Fatal("overflow went undetected!")
	}
}

func fmtPtr(p uint64) string {
	return fmt.Sprintf("0x%016x", p)
}
