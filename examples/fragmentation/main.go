// Fragmentation walkthrough (paper §IV-E, Figs. 4 and 5): the CUDA
// device heap already fragments memory through chunked buffer groups, so
// LMI's 2^n rounding costs little extra — except for the pathological
// "power-of-two payload plus header" pattern of backprop and needle.
package main

import (
	"fmt"

	"lmi/internal/alloc"
	"lmi/internal/workloads"
)

func main() {
	// Fig. 5: the stock kernel malloc() rounds to chunk units (80 B for
	// small requests, 2208 B for large) and packs buffers into groups
	// behind a shared header.
	fmt.Println("Fig. 5 — device-heap layout (stock policy):")
	h := alloc.NewDefaultDeviceHeap(alloc.PolicyBase)
	for _, req := range []uint64{24, 80, 500, 1024, 2000, 5000} {
		b, err := h.Malloc(req)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  malloc(%4d) -> addr %#x, reserved %4d (chunk-rounded), waste %3d B\n",
			req, b.Addr, b.Reserved, b.Reserved-req)
	}

	fmt.Println("\nSame requests under LMI's 2^n policy:")
	h2 := alloc.NewDefaultDeviceHeap(alloc.PolicyPow2)
	for _, req := range []uint64{24, 80, 500, 1024, 2000, 5000} {
		b, err := h2.Malloc(req)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  malloc(%4d) -> addr %#x, reserved %4d (class %d), aligned=%v\n",
			req, b.Addr, b.Reserved, b.Extent, b.Addr%b.Reserved == 0)
	}

	// Fig. 4: replay each benchmark's allocation trace under both
	// policies and compare peak resident set.
	fmt.Println("\nFig. 4 — peak-RSS overhead of 2^n alignment per benchmark:")
	for _, name := range []string{"hotspot", "srad_v1", "bfs", "bert", "backprop", "needle"} {
		s := workloads.ByName(name)
		res, err := alloc.MeasureFragmentation(s.AllocTrace)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-10s base %6d KiB -> lmi %6d KiB  (+%5.1f%%)\n",
			name, res.BasePeak>>10, res.Pow2Peak>>10, 100*res.Overhead)
	}
	fmt.Println("\n(backprop and needle allocate power-of-two payloads plus header")
	fmt.Println(" bytes, which nearly double under 2^n rounding — the paper's 85.9%")
	fmt.Println(" and 92.9% outliers; the suite geomean stays near 18.7%.)")
}
