// Mind-control scenario (paper §IV-D): a stack-buffer overflow inside a
// single thread overwrites an adjacent stack slot — the pattern behind
// return-address corruption and the Mind Control Attack on DNN inference.
//
// Region-based protection (GPUShield) treats the whole per-thread stack
// as one region and lets the overflow through; LMI's per-buffer size
// classes catch the very first out-of-class byte.
package main

import (
	"fmt"
	"log"

	"lmi/internal/compiler"
	"lmi/internal/ir"
	"lmi/internal/isa"
	"lmi/internal/safety"
	"lmi/internal/sim"
)

// buildVictim builds a kernel with a 256-byte stack array and a second
// stack slot standing in for a saved return address. The attacker
// controls `count` (a kernel parameter) and overflows the array into the
// adjacent slot.
func buildVictim() *ir.Func {
	b := ir.NewBuilder("victim")
	out := b.Param(ir.PtrGlobal)
	count := b.Param(ir.I32)
	buf := b.Alloca(256)     // char buf[256]
	retSlot := b.Alloca(256) // stands in for the saved return address
	b.Store(retSlot, b.ConstI(ir.I32, 0x600D), 0)
	gtid := b.GlobalTID()
	b.If(b.ICmp(isa.CmpEQ, gtid, b.ConstI(ir.I32, 0)), func() {
		// memset(buf, i, count) — count is attacker-controlled.
		b.For(count, func(i ir.Value) {
			b.Store(b.GEP(buf, i, 4, 0), i, 0)
		})
		b.Store(out, b.Load(ir.I32, retSlot, 0), 0) // "return"
	}, nil)
	return b.MustFinish()
}

func runUnder(name string, mech sim.Mechanism, mode compiler.Mode, count uint64) {
	prog, err := compiler.Compile(buildVictim(), mode)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := sim.NewDevice(sim.ScaledConfig(1), mech)
	if err != nil {
		log.Fatal(err)
	}
	out, _ := dev.Malloc(64)
	st, err := dev.Launch(prog, 1, 32, []uint64{out, count})
	if err != nil {
		log.Fatal(err)
	}
	ret := uint64(0)
	if b := dev.ReadGlobal(out, 4); len(b) == 4 {
		ret = uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24
	}
	switch {
	case len(st.Faults) > 0:
		fmt.Printf("%-10s count=%3d: BLOCKED — %v\n", name, count, st.FirstFault())
	case ret != 0x600D:
		fmt.Printf("%-10s count=%3d: COMPROMISED — return slot now %#x (attack succeeded)\n",
			name, count, ret)
	default:
		fmt.Printf("%-10s count=%3d: clean run, return slot intact\n", name, count)
	}
}

func main() {
	fmt.Println("benign input (count=64 elements = exactly the 256-byte buffer):")
	runUnder("gpushield", safety.NewGPUShield(), compiler.ModeBase, 64)
	runUnder("lmi", safety.NewLMI(), compiler.ModeLMI, 64)

	fmt.Println("\nmalicious input (count=80: 64 past the buffer into the next slot):")
	runUnder("gpushield", safety.NewGPUShield(), compiler.ModeBase, 80)
	runUnder("lmi", safety.NewLMI(), compiler.ModeLMI, 80)
}
