// Matmul: the high-level runtime API (internal/gpu) driving a real
// shared-memory-tiled matrix multiply (internal/apps) under LMI — and
// the same kernel attacked with an undersized output buffer.
package main

import (
	"errors"
	"fmt"
	"log"

	"lmi/internal/apps"
	"lmi/internal/gpu"
)

func main() {
	const n, tile = 64, 8
	ctx, err := gpu.NewLMIContext(2)
	if err != nil {
		log.Fatal(err)
	}
	k, err := ctx.Compile(apps.MatMulTiled(tile))
	if err != nil {
		log.Fatal(err)
	}

	a, _ := gpu.Alloc[float32](ctx, n*n)
	b, _ := gpu.Alloc[float32](ctx, n*n)
	c, _ := gpu.Alloc[float32](ctx, n*n)
	ha := make([]float32, n*n)
	hb := make([]float32, n*n)
	for i := range ha {
		ha[i] = float32(i % 7)
		hb[i] = float32(i % 5)
	}
	a.CopyIn(ha)
	b.CopyIn(hb)

	st, err := ctx.Launch(k, gpu.Dim2(n/tile, n/tile), gpu.Dim2(tile, tile),
		a, b, c, gpu.I32(n))
	if err != nil {
		log.Fatal(err)
	}
	out, _ := c.CopyOut()

	// Spot-check against the host.
	var want float32
	for kk := 0; kk < n; kk++ {
		want = ha[3*n+kk]*hb[kk*n+5] + want
	}
	fmt.Printf("C[3][5] = %v (host: %v) in %d cycles, %d OCU checks\n",
		out[3*n+5], want, st.Cycles, st.PointerChecks)

	// Now the attack: pass a C buffer sized for half the matrix. (Under
	// LMI, overflow into a buffer's power-of-two rounding padding is
	// benign by construction — the attack must cross the size class, so
	// the undersized buffer is half the rows, one class smaller.) The
	// OCU clears the pointer's extent at the first out-of-class store
	// address and the EC blocks the write.
	small, _ := gpu.Alloc[float32](ctx, n*n/2)
	_, err = ctx.Launch(k, gpu.Dim2(n/tile, n/tile), gpu.Dim2(tile, tile),
		a, b, small, gpu.I32(n))
	var sf *gpu.SafetyError
	if errors.As(err, &sf) {
		fmt.Printf("undersized output blocked: %v\n", sf)
	} else {
		log.Fatalf("overflow not detected (err=%v)", err)
	}
}
