// Temporal safety walkthrough: the Fig. 11 scenario. free(A) invalidates
// the pointer A (the compiler nullifies its extent), so dereferencing A
// afterwards faults — but a copy C taken before the free keeps a valid
// extent and slips through. The §XII-C pointer-liveness extension (the
// UM membership table of Algorithm 1) closes that gap.
package main

import (
	"fmt"
	"log"

	"lmi/internal/compiler"
	"lmi/internal/ir"
	"lmi/internal/isa"
	"lmi/internal/safety"
	"lmi/internal/sim"
)

// buildFig11 reproduces the paper's listing:
//
//	int* A = malloc(4*sizeof(int));
//	B = A[0];        // safe
//	C = A + 1;
//	free(A);         // A invalidated
//	D = A[0];        // error: A is invalid          <- useA
//	G = C[0];        // UNSAFE but no error (base)   <- useCopy
func buildFig11(useA, useCopy bool) *ir.Func {
	b := ir.NewBuilder("fig11")
	out := b.Param(ir.PtrGlobal)
	gtid := b.GlobalTID()
	b.If(b.ICmp(isa.CmpLT, gtid, b.ConstI(ir.I32, 1)), func() {
		A := b.Malloc(b.ConstI(ir.I32, 256))
		b.Store(A, b.ConstI(ir.I32, 11), 0)
		B := b.Load(ir.I32, A, 0) // safe access
		C := b.GEP(A, b.ConstI(ir.I32, 1), 4, 0)
		b.Free(A) // A's extent nullified right after this
		var v ir.Value = B
		if useA {
			v = b.Load(ir.I32, A, 0) // D = A[0]
		}
		if useCopy {
			v = b.Load(ir.I32, C, 0) // G = C[0]
		}
		b.Store(out, v, 0)
	}, nil)
	return b.MustFinish()
}

func run(label string, f *ir.Func, tracking bool) {
	var mech sim.Mechanism = safety.NewLMI()
	mechName := "LMI"
	if tracking {
		mech = safety.NewLMIWithTracking(false)
		mechName = "LMI+tracking"
	}
	prog, err := compiler.Compile(f, compiler.ModeLMI)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := sim.NewDevice(sim.ScaledConfig(1), mech)
	if err != nil {
		log.Fatal(err)
	}
	out, _ := dev.Malloc(64)
	st, err := dev.Launch(prog, 1, 32, []uint64{out})
	if err != nil {
		log.Fatal(err)
	}
	if fault := st.FirstFault(); fault != nil {
		fmt.Printf("%-28s %-13s: DETECTED (%s fault)\n", label, mechName, fault.Kind)
	} else {
		fmt.Printf("%-28s %-13s: not detected\n", label, mechName)
	}
}

func main() {
	fmt.Println("Fig. 11 — LMI temporal safety and its copied-pointer gap:")
	run("safe access (B = A[0])", buildFig11(false, false), false)
	run("UAF via original (D = A[0])", buildFig11(true, false), false)
	run("UAF via copy (G = C[0])", buildFig11(false, true), false)

	fmt.Println("\nWith Algorithm 1 liveness tracking (§XII-C):")
	run("UAF via copy (G = C[0])", buildFig11(false, true), true)
}
