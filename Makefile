# Convenience targets; scripts/check.sh is the canonical gate.

GO ?= go

.PHONY: build test race vet lint analyze check check-short bench serve soak fleet-soak fast

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -timeout 45m ./...

# Static verification of the LMI microcode contract over every lowered
# kernel (also part of the check gate).
lint:
	$(GO) run ./cmd/lmi-lint -all

# The full static-analysis gate: the microcode contract over the whole
# corpus plus the elide soundness audit — every workload recompiled with
# static extent-check elision, every E bit re-derived by the linter's
# independent value analysis. Fails on any unsound-elide diagnostic or
# any proven-out-of-bounds access in a shipped workload.
analyze:
	$(GO) run ./cmd/lmi-lint -all -elide-audit

# The full verification gate: vet + build + tests + race detector +
# static contract lint.
check:
	scripts/check.sh

# Same gate with the slow Fig. 12/13 race sweeps skipped.
check-short:
	scripts/check.sh -short

# The hardened simulation service (POST /run, GET /healthz /readyz
# /stats; graceful drain on SIGTERM with a JSON shutdown report).
serve:
	$(GO) run ./cmd/lmi-serve -addr :8080

# The chaos soak: a seeded request stream replayed through the serving
# state machines on a virtual timeline; nonzero exit on any robustness
# violation (also part of the check gate).
soak:
	$(GO) run ./cmd/lmi-serve -soak -v

# The fleet soak: 100000 seeded requests consistent-hash-sharded across
# 4 simulated device workers under scripted shard kills, rejoins, and
# burst overloads, with every request's safety decision logged as JSONL
# (also part of the check gate, where the report and decision log must
# additionally be byte-identical across worker counts).
fleet-soak:
	$(GO) run ./cmd/lmi-serve -soak -shards 4 -requests 100000 \
		-decision-log fleet-decisions.jsonl
	@echo "decision log: fleet-decisions.jsonl"

# The fast-path tier gate: the full workload differential corpus and
# the chaos campaign replayed through both execution tiers (the
# compiled tier's functional projection must be bit-identical to the
# cycle simulator), then the whole bench sweep on the compiled tier —
# nonzero exit on any divergence or experiment failure.
fast:
	$(GO) test -run 'TestDifferentialWorkloadCorpus' ./internal/fastsim/
	$(GO) test -run 'TestTierDifferentialChaosCorpus' ./internal/chaos/
	$(GO) run ./cmd/lmi-bench -all -tier compiled

# The evaluation benchmarks; LMI_BENCH_JSON=. also writes BENCH_*.json
# trajectory points for the fig01/fig12/fig13 sweeps.
bench:
	LMI_BENCH_JSON=. $(GO) test -bench=. -benchmem . | tee bench_output.txt
