# Convenience targets; scripts/check.sh is the canonical gate.

GO ?= go

.PHONY: build test race vet lint check check-short bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -timeout 45m ./...

# Static verification of the LMI microcode contract over every lowered
# kernel (also part of the check gate).
lint:
	$(GO) run ./cmd/lmi-lint -all

# The full verification gate: vet + build + tests + race detector +
# static contract lint.
check:
	scripts/check.sh

# Same gate with the slow Fig. 12/13 race sweeps skipped.
check-short:
	scripts/check.sh -short

# The evaluation benchmarks; LMI_BENCH_JSON=. also writes BENCH_*.json
# trajectory points for the fig01/fig12/fig13 sweeps.
bench:
	LMI_BENCH_JSON=. $(GO) test -bench=. -benchmem . | tee bench_output.txt
