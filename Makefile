# Convenience targets; scripts/check.sh is the canonical gate.

GO ?= go

.PHONY: build test race vet lint analyze race-oracle peval check check-short bench serve soak fleet-soak fast bundle

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -timeout 45m ./...

# Static verification of the LMI microcode contract over every lowered
# kernel, plus the custom vet pass (no raw panic(, os.Exit(, ambient
# clock read, or math/rand import in non-test code under internal/).
# Both are also part of the check gate.
lint:
	$(GO) run ./cmd/lmi-lint -all
	$(GO) run ./scripts/vetnopanic

# The full static-analysis gate: the microcode contract over the whole
# corpus plus the elide soundness audit — every workload recompiled with
# static extent-check elision, every E bit re-derived by the linter's
# independent value analysis — plus the static shared-memory race and
# barrier-divergence analyzer over every program (pre- and
# post-optimizer, both modes, and the elided compiles), plus the
# specialization audit — every workload partially evaluated against its
# concrete launch contract and the certificate's every transform
# re-judged. Fails on any unsound-elide diagnostic, any
# proven-out-of-bounds access in a shipped workload, any potential
# race, divergent barrier, inexpressible shared address, or unsound
# specialization.
analyze:
	$(GO) run ./cmd/lmi-lint -all -elide-audit -race -spec-audit

# The dynamic race-oracle overhead sweep: the Fig. 12 corpus with the
# shared-memory race oracle off vs armed. Asserts the oracle never
# perturbs a cycle count and reports zero races on the
# statically-proven-race-free corpus; regenerates the committed
# cycle-tier artifact BENCH_fig12_raceoracle.json.
race-oracle:
	$(GO) run ./cmd/lmi-bench -race-oracle-json BENCH_fig12_raceoracle.json

# The contract-specialization sweep: every workload's general elided
# program vs its certified residual under the same launch, with the
# cycle and avoided-check deltas priced by the hardware-cost model;
# regenerates the committed cycle-tier artifact BENCH_fig12_peval.json
# (byte-identical across -jobs; the check gate pins it).
peval:
	$(GO) run ./cmd/lmi-bench -peval-json BENCH_fig12_peval.json

# The full verification gate: vet + build + tests + race detector +
# static contract lint.
check:
	scripts/check.sh

# Same gate with the slow Fig. 12/13 race sweeps skipped.
check-short:
	scripts/check.sh -short

# The hardened simulation service (POST /run, GET /healthz /readyz
# /stats; graceful drain on SIGTERM with a JSON shutdown report).
serve:
	$(GO) run ./cmd/lmi-serve -addr :8080

# The chaos soak: a seeded request stream replayed through the serving
# state machines on a virtual timeline; nonzero exit on any robustness
# violation (also part of the check gate).
soak:
	$(GO) run ./cmd/lmi-serve -soak -v

# The fleet soak: 100000 seeded requests consistent-hash-sharded across
# 4 simulated device workers under scripted shard kills, rejoins, and
# burst overloads, with every request's safety decision logged as JSONL
# (also part of the check gate, where the report and decision log must
# additionally be byte-identical across worker counts).
fleet-soak:
	$(GO) run ./cmd/lmi-serve -soak -shards 4 -requests 100000 \
		-decision-log fleet-decisions.jsonl
	@echo "decision log: fleet-decisions.jsonl"

# Build and self-verify a signed artifact bundle of the default
# workload trio with the dev signing key (a fixture, not a secret; set
# LMI_BUNDLE_KEY or KEY= for a real one). The artifact bytes are a pure
# function of (workload list, key) — the check gate additionally pins
# -jobs 1 vs -jobs 4 byte-identity and single-byte tamper rejection.
# Serve it with: lmi-serve -bundle lmi-bundle.json -bundle-pub <signer>.
KEY ?= 0101010101010101010101010101010101010101010101010101010101010101
bundle:
	@out=$$($(GO) run ./cmd/lmi-compile -bundle lmi-bundle.json -key $(KEY)) && \
	echo "$$out" && \
	$(GO) run ./cmd/lmi-compile -verify-bundle lmi-bundle.json \
		-pub $$(echo "$$out" | awk '$$1 == "signer" { print $$2 }')

# The fast-path tier gate: the full workload differential corpus and
# the chaos campaign replayed through both execution tiers (the
# compiled tier's functional projection must be bit-identical to the
# cycle simulator), then the whole bench sweep on the compiled tier —
# nonzero exit on any divergence or experiment failure.
fast:
	$(GO) test -run 'TestDifferentialWorkloadCorpus' ./internal/fastsim/
	$(GO) test -run 'TestTierDifferentialChaosCorpus' ./internal/chaos/
	$(GO) run ./cmd/lmi-bench -all -tier compiled

# The evaluation benchmarks; LMI_BENCH_JSON=. also writes BENCH_*.json
# trajectory points for the fig01/fig12/fig13 sweeps.
bench:
	LMI_BENCH_JSON=. $(GO) test -bench=. -benchmem . | tee bench_output.txt
