// Command vetnopanic is the repository's custom vet pass: it rejects
// raw panic( and os.Exit( calls in non-test code under internal/. The
// runtime layers recover panics only at hardened pool boundaries (the
// runner's workers, the serving shards) where they are classified as
// Degraded outcomes; everywhere else a raw panic escalates a
// per-request failure into a process crash, so internal code must
// return typed errors instead. os.Exit in a library bypasses those same
// boundaries — and every deferred flush — so process exit belongs to
// the cmd/ mains alone: internal code returns an error (or an exit
// status for the main to apply), as internal/cliutil's Usage does. Test
// files are exempt — tests panic freely in helpers and
// deliberately-misbehaving fixtures (the chaos engine's panicking
// mechanism plug-ins).
//
// The pass is pure standard library (go/ast, go/parser): it parses
// every non-test .go file under the root and flags call expressions
// whose callee is the panic identifier or the Exit selector on the
// file's "os" import (under whatever local name it is imported). A
// file-local function or variable shadowing the builtin or the import
// would be flagged too; the repository style forbids that shadowing
// anyway.
//
// Usage: go run ./scripts/vetnopanic [-root internal]
//
// Exits 1 when any violation is found, listing each as
// file:line:column. scripts/check.sh and `make lint` run it as a gate.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	root := flag.String("root", "internal", "directory tree to scan for raw panics")
	flag.Parse()
	findings, nfiles, err := scan(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetnopanic: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vetnopanic: %d violation(s) in non-test code under %s\n",
			len(findings), *root)
		os.Exit(1)
	}
	fmt.Printf("vetnopanic: %d files scanned, no raw panics or os.Exit calls\n", nfiles)
}

// scan walks root, parses every non-test .go file, and returns one
// finding per violation plus the number of files scanned.
func scan(root string) (findings []string, nfiles int, err error) {
	fset := token.NewFileSet()
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			return perr
		}
		nfiles++
		findings = append(findings, checkFile(fset, f)...)
		return nil
	})
	return findings, nfiles, err
}

// checkFile returns one finding per raw panic call and per os.Exit
// call in the parsed file. Only direct calls count: for panic the bare
// identifier (method values x.panic never match), for Exit a selector
// on the file's "os" import under its local name. Mentions in strings
// or comments never match either.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	osName := osImportName(f)
	var findings []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name != "panic" {
				return true
			}
			pos := fset.Position(call.Pos())
			findings = append(findings, fmt.Sprintf(
				"%s:%d:%d: raw panic in non-test code; return a typed error instead",
				pos.Filename, pos.Line, pos.Column))
		case *ast.SelectorExpr:
			pkg, ok := fun.X.(*ast.Ident)
			if !ok || osName == "" || pkg.Name != osName || fun.Sel.Name != "Exit" {
				return true
			}
			pos := fset.Position(call.Pos())
			findings = append(findings, fmt.Sprintf(
				"%s:%d:%d: os.Exit in non-test code; process exit belongs to cmd/ mains — return an error or exit status instead",
				pos.Filename, pos.Line, pos.Column))
		}
		return true
	})
	return findings
}

// osImportName returns the local name the file imports the "os"
// package under ("" when it is not imported, or imported blank).
func osImportName(f *ast.File) string {
	for _, imp := range f.Imports {
		if imp.Path.Value != `"os"` {
			continue
		}
		if imp.Name == nil {
			return "os"
		}
		if imp.Name.Name == "_" {
			return ""
		}
		return imp.Name.Name
	}
	return ""
}
