// Command vetnopanic is the repository's custom vet pass: it rejects
// raw panic( and os.Exit( calls in non-test code under internal/. The
// runtime layers recover panics only at hardened pool boundaries (the
// runner's workers, the serving shards) where they are classified as
// Degraded outcomes; everywhere else a raw panic escalates a
// per-request failure into a process crash, so internal code must
// return typed errors instead. os.Exit in a library bypasses those same
// boundaries — and every deferred flush — so process exit belongs to
// the cmd/ mains alone: internal code returns an error (or an exit
// status for the main to apply), as internal/cliutil's Usage does. Test
// files are exempt — tests panic freely in helpers and
// deliberately-misbehaving fixtures (the chaos engine's panicking
// mechanism plug-ins).
//
// It also polices the repository's determinism contract: every
// rendered table, JSON artifact, bundle, and benchmark row must be a
// pure function of its inputs (byte-identical across runs and -jobs).
// Ambient wall-clock reads (time.Now / time.Since) are therefore
// confined to the sanctioned timing packages (-wallclock, default
// runner,serve,sim,fleet) whose measurements never reach a
// deterministic artifact — anywhere else under internal/ they are
// violations. Ambient randomness has no sanctioned owner at all: a
// math/rand (or math/rand/v2) import in non-test internal code is
// always a violation — derive pseudo-random state from explicit seeds
// instead.
//
// The pass is pure standard library (go/ast, go/parser): it parses
// every non-test .go file under the root and flags call expressions
// whose callee is the panic identifier or the Exit selector on the
// file's "os" import (under whatever local name it is imported), plus
// Now/Since selectors on the "time" import outside the wall-clock
// allowlist. A file-local function or variable shadowing the builtin
// or an import would be flagged too; the repository style forbids that
// shadowing anyway.
//
// Usage: go run ./scripts/vetnopanic [-root internal] [-wallclock runner,serve,sim,fleet]
//
// Exits 1 when any violation is found, listing each as
// file:line:column. scripts/check.sh and `make lint` run it as a gate.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// defaultWallclock lists the packages (directories relative to -root)
// sanctioned to read the host wall clock: the runner's timing reports,
// the serving/fleet uptime counters, and the simulator's watchdog
// deadline — all measurements that never reach a deterministic
// artifact.
const defaultWallclock = "runner,serve,sim,fleet"

func main() {
	root := flag.String("root", "internal", "directory tree to scan for raw panics")
	wallclock := flag.String("wallclock", defaultWallclock,
		"comma-separated directories under -root sanctioned to call time.Now/time.Since")
	flag.Parse()
	findings, nfiles, err := scan(*root, *wallclock)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetnopanic: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vetnopanic: %d violation(s) in non-test code under %s\n",
			len(findings), *root)
		os.Exit(1)
	}
	fmt.Printf("vetnopanic: %d files scanned, no raw panics, os.Exit calls, stray clock reads, or ambient randomness\n", nfiles)
}

// scan walks root, parses every non-test .go file, and returns one
// finding per violation plus the number of files scanned. wallclock
// names the root-relative directories exempt from the clock rule.
func scan(root, wallclock string) (findings []string, nfiles int, err error) {
	exempt := make(map[string]bool)
	for _, d := range strings.Split(wallclock, ",") {
		if d = strings.TrimSpace(d); d != "" {
			exempt[d] = true
		}
	}
	fset := token.NewFileSet()
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			return perr
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			rel = path
		}
		nfiles++
		findings = append(findings, checkFile(fset, f, exempt[filepath.ToSlash(filepath.Dir(rel))])...)
		return nil
	})
	return findings, nfiles, err
}

// checkFile returns one finding per raw panic call, per os.Exit call,
// per clock read outside the wall-clock allowlist (clockExempt), and
// per math/rand import in the parsed file. Only direct calls count:
// for panic the bare identifier (method values x.panic never match),
// for Exit/Now/Since a selector on the file's "os"/"time" import
// under its local name. Mentions in strings or comments never match.
func checkFile(fset *token.FileSet, f *ast.File, clockExempt bool) []string {
	osName := importName(f, "os")
	timeName := importName(f, "time")
	var findings []string
	for _, imp := range f.Imports {
		if imp.Path.Value == `"math/rand"` || imp.Path.Value == `"math/rand/v2"` {
			pos := fset.Position(imp.Pos())
			findings = append(findings, fmt.Sprintf(
				"%s:%d:%d: math/rand import in non-test code; deterministic outputs forbid ambient randomness — derive pseudo-random state from explicit seeds",
				pos.Filename, pos.Line, pos.Column))
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name != "panic" {
				return true
			}
			pos := fset.Position(call.Pos())
			findings = append(findings, fmt.Sprintf(
				"%s:%d:%d: raw panic in non-test code; return a typed error instead",
				pos.Filename, pos.Line, pos.Column))
		case *ast.SelectorExpr:
			pkg, ok := fun.X.(*ast.Ident)
			if !ok {
				return true
			}
			if osName != "" && pkg.Name == osName && fun.Sel.Name == "Exit" {
				pos := fset.Position(call.Pos())
				findings = append(findings, fmt.Sprintf(
					"%s:%d:%d: os.Exit in non-test code; process exit belongs to cmd/ mains — return an error or exit status instead",
					pos.Filename, pos.Line, pos.Column))
				return true
			}
			if !clockExempt && timeName != "" && pkg.Name == timeName &&
				(fun.Sel.Name == "Now" || fun.Sel.Name == "Since") {
				pos := fset.Position(call.Pos())
				findings = append(findings, fmt.Sprintf(
					"%s:%d:%d: time.%s outside the wall-clock allowlist; deterministic outputs forbid ambient clock reads — inject the time or keep it out of internal logic",
					pos.Filename, pos.Line, pos.Column, fun.Sel.Name))
			}
		}
		return true
	})
	return findings
}

// importName returns the local name the file imports the given
// standard-library package under ("" when it is not imported, or
// imported blank).
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		if imp.Path.Value != `"`+path+`"` {
			continue
		}
		if imp.Name == nil {
			return path
		}
		if imp.Name.Name == "_" {
			return ""
		}
		return imp.Name.Name
	}
	return ""
}
