// Command vetnopanic is the repository's custom vet pass: it rejects
// raw panic( calls in non-test code under internal/. The runtime
// layers recover panics only at hardened pool boundaries (the runner's
// workers, the serving shards) where they are classified as Degraded
// outcomes; everywhere else a raw panic escalates a per-request failure
// into a process crash, so internal code must return typed errors
// instead. Test files are exempt — tests panic freely in helpers and
// deliberately-misbehaving fixtures (the chaos engine's panicking
// mechanism plug-ins).
//
// The pass is pure standard library (go/ast, go/parser): it parses
// every non-test .go file under the root and flags call expressions
// whose callee is the panic identifier. A file-local function or
// variable shadowing the builtin would be flagged too; the repository
// style forbids that shadowing anyway.
//
// Usage: go run ./scripts/vetnopanic [-root internal]
//
// Exits 1 when any raw panic is found, listing each as
// file:line:column. scripts/check.sh and `make lint` run it as a gate.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	root := flag.String("root", "internal", "directory tree to scan for raw panics")
	flag.Parse()
	findings, nfiles, err := scan(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetnopanic: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vetnopanic: %d raw panic(s) in non-test code under %s\n",
			len(findings), *root)
		os.Exit(1)
	}
	fmt.Printf("vetnopanic: %d files scanned, no raw panics\n", nfiles)
}

// scan walks root, parses every non-test .go file, and returns one
// finding per raw panic call plus the number of files scanned.
func scan(root string) (findings []string, nfiles int, err error) {
	fset := token.NewFileSet()
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			return perr
		}
		nfiles++
		findings = append(findings, checkFile(fset, f)...)
		return nil
	})
	return findings, nfiles, err
}

// checkFile returns one finding per raw panic call expression in the
// parsed file. Only direct calls of the bare identifier count:
// method values (x.panic), other identifiers, and mentions in strings
// or comments never match.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	var findings []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		pos := fset.Position(call.Pos())
		findings = append(findings, fmt.Sprintf(
			"%s:%d:%d: raw panic in non-test code; return a typed error instead",
			pos.Filename, pos.Line, pos.Column))
		return true
	})
	return findings
}
