package main

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func check(t *testing.T, src string) []string {
	t.Helper()
	return checkExempt(t, src, false)
}

func checkExempt(t *testing.T, src string, clockExempt bool) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "synthetic.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return checkFile(fset, f, clockExempt)
}

func TestFlagsRawPanic(t *testing.T) {
	got := check(t, `package p
func f() { panic("boom") }
`)
	if len(got) != 1 || !strings.Contains(got[0], "synthetic.go:2:12") {
		t.Fatalf("want one finding at 2:12, got %v", got)
	}
}

func TestIgnoresNonPanicCalls(t *testing.T) {
	got := check(t, `package p
type r struct{}
func (r) panic(string) {}
func f(x r) {
	x.panic("method, not builtin")
	panicky()
	_ = "panic(in a string)"
	// panic(in a comment)
}
func panicky() {}
`)
	if len(got) != 0 {
		t.Fatalf("want no findings, got %v", got)
	}
}

func TestFlagsOsExit(t *testing.T) {
	got := check(t, `package p
import "os"
func f() { os.Exit(1) }
`)
	if len(got) != 1 || !strings.Contains(got[0], "synthetic.go:3:12") ||
		!strings.Contains(got[0], "os.Exit in non-test code") {
		t.Fatalf("want one os.Exit finding at 3:12, got %v", got)
	}
}

func TestFlagsOsExitRenamedImport(t *testing.T) {
	got := check(t, `package p
import sys "os"
func f() { sys.Exit(3) }
`)
	if len(got) != 1 || !strings.Contains(got[0], "os.Exit in non-test code") {
		t.Fatalf("want one finding through the renamed import, got %v", got)
	}
}

func TestIgnoresNonOsExit(t *testing.T) {
	got := check(t, `package p
import (
	"os"
	"q/proc"
)
func f() {
	proc.Exit(1)        // Exit on some other package
	_, _ = os.Open("x") // os, but not Exit
	_ = "os.Exit(in a string)"
	// os.Exit(in a comment)
}
`)
	if len(got) != 0 {
		t.Fatalf("want no findings, got %v", got)
	}
}

func TestIgnoresExitWhenOsNotImported(t *testing.T) {
	// An identifier spelled "os" that is not the "os" import (here a
	// parameter) must not match.
	got := check(t, `package p
type fakeOS struct{}
func (fakeOS) Exit(int) {}
func f(os fakeOS) { os.Exit(1) }
`)
	if len(got) != 0 {
		t.Fatalf("want no findings, got %v", got)
	}
}

func TestFlagsClockReads(t *testing.T) {
	src := `package p
import "time"
func f() time.Duration {
	start := time.Now()
	return time.Since(start)
}
`
	got := check(t, src)
	if len(got) != 2 ||
		!strings.Contains(got[0], "time.Now outside the wall-clock allowlist") ||
		!strings.Contains(got[1], "time.Since outside the wall-clock allowlist") {
		t.Fatalf("want Now+Since findings, got %v", got)
	}
	if got := checkExempt(t, src, true); len(got) != 0 {
		t.Fatalf("allowlisted package still flagged: %v", got)
	}
}

func TestIgnoresNonClockTimeUse(t *testing.T) {
	got := check(t, `package p
import "time"
func f() {
	time.Sleep(time.Millisecond) // blocks, but reads no clock value
	_ = 3 * time.Second
	_ = "time.Now(in a string)"
	// time.Now(in a comment)
}
`)
	if len(got) != 0 {
		t.Fatalf("want no findings, got %v", got)
	}
}

func TestIgnoresNowWhenTimeNotImported(t *testing.T) {
	got := check(t, `package p
type fakeClock struct{}
func (fakeClock) Now() int { return 0 }
func f(time fakeClock) { _ = time.Now() }
`)
	if len(got) != 0 {
		t.Fatalf("want no findings, got %v", got)
	}
}

func TestFlagsMathRandImport(t *testing.T) {
	got := check(t, `package p
import "math/rand"
func f() int { return rand.Int() }
`)
	if len(got) != 1 || !strings.Contains(got[0], "math/rand import in non-test code") {
		t.Fatalf("want one import finding, got %v", got)
	}
	// v2 and renamed imports are the same violation; crypto/rand (key
	// material, never a simulation input) is not.
	if got := check(t, "package p\nimport mrand \"math/rand/v2\"\nvar _ = mrand.Int\n"); len(got) != 1 {
		t.Fatalf("want one v2 finding, got %v", got)
	}
	// Clock exemption does not extend to randomness.
	if got := checkExempt(t, "package p\nimport \"math/rand\"\nvar _ = rand.Int\n", true); len(got) != 1 {
		t.Fatalf("want rand flagged even in wall-clock packages, got %v", got)
	}
	if got := check(t, "package p\nimport \"crypto/rand\"\nvar _ = rand.Reader\n"); len(got) != 0 {
		t.Fatalf("crypto/rand wrongly flagged: %v", got)
	}
}

func TestScanSkipsTestFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.go", "package p\nfunc f() { panic(1) }\n")
	write("a_test.go", "package p\nfunc g() { panic(2) }\n")
	findings, n, err := scan(dir, defaultWallclock)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("scanned %d files, want 1 (test file exempt)", n)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "a.go:2:12") {
		t.Fatalf("want one finding in a.go, got %v", findings)
	}
}

// TestWallclockScanExemption: the allowlist is directory-scoped —
// the same clock read passes in an exempt directory and fails
// elsewhere.
func TestWallclockScanExemption(t *testing.T) {
	dir := t.TempDir()
	src := "package p\nimport \"time\"\nvar _ = time.Now\nfunc f() { _ = time.Now() }\n"
	for _, sub := range []string{"runner", "other"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, sub, "a.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	findings, n, err := scan(dir, defaultWallclock)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("scanned %d files, want 2", n)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], filepath.Join("other", "a.go")) {
		t.Fatalf("want exactly the non-exempt file flagged, got %v", findings)
	}
}

// TestRepositoryInvariant runs the real gate: no raw panic, os.Exit,
// stray clock read, or math/rand import in non-test code under
// internal/.
func TestRepositoryInvariant(t *testing.T) {
	findings, n, err := scan("../../internal", defaultWallclock)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("scanned no files; wrong working directory?")
	}
	if len(findings) != 0 {
		t.Fatalf("raw panics / os.Exit calls in internal/:\n%s", strings.Join(findings, "\n"))
	}
}
