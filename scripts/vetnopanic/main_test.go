package main

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func check(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "synthetic.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return checkFile(fset, f)
}

func TestFlagsRawPanic(t *testing.T) {
	got := check(t, `package p
func f() { panic("boom") }
`)
	if len(got) != 1 || !strings.Contains(got[0], "synthetic.go:2:12") {
		t.Fatalf("want one finding at 2:12, got %v", got)
	}
}

func TestIgnoresNonPanicCalls(t *testing.T) {
	got := check(t, `package p
type r struct{}
func (r) panic(string) {}
func f(x r) {
	x.panic("method, not builtin")
	panicky()
	_ = "panic(in a string)"
	// panic(in a comment)
}
func panicky() {}
`)
	if len(got) != 0 {
		t.Fatalf("want no findings, got %v", got)
	}
}

func TestFlagsOsExit(t *testing.T) {
	got := check(t, `package p
import "os"
func f() { os.Exit(1) }
`)
	if len(got) != 1 || !strings.Contains(got[0], "synthetic.go:3:12") ||
		!strings.Contains(got[0], "os.Exit in non-test code") {
		t.Fatalf("want one os.Exit finding at 3:12, got %v", got)
	}
}

func TestFlagsOsExitRenamedImport(t *testing.T) {
	got := check(t, `package p
import sys "os"
func f() { sys.Exit(3) }
`)
	if len(got) != 1 || !strings.Contains(got[0], "os.Exit in non-test code") {
		t.Fatalf("want one finding through the renamed import, got %v", got)
	}
}

func TestIgnoresNonOsExit(t *testing.T) {
	got := check(t, `package p
import (
	"os"
	"q/proc"
)
func f() {
	proc.Exit(1)        // Exit on some other package
	_, _ = os.Open("x") // os, but not Exit
	_ = "os.Exit(in a string)"
	// os.Exit(in a comment)
}
`)
	if len(got) != 0 {
		t.Fatalf("want no findings, got %v", got)
	}
}

func TestIgnoresExitWhenOsNotImported(t *testing.T) {
	// An identifier spelled "os" that is not the "os" import (here a
	// parameter) must not match.
	got := check(t, `package p
type fakeOS struct{}
func (fakeOS) Exit(int) {}
func f(os fakeOS) { os.Exit(1) }
`)
	if len(got) != 0 {
		t.Fatalf("want no findings, got %v", got)
	}
}

func TestScanSkipsTestFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.go", "package p\nfunc f() { panic(1) }\n")
	write("a_test.go", "package p\nfunc g() { panic(2) }\n")
	findings, n, err := scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("scanned %d files, want 1 (test file exempt)", n)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "a.go:2:12") {
		t.Fatalf("want one finding in a.go, got %v", findings)
	}
}

// TestRepositoryInvariant runs the real gate: no raw panic and no
// os.Exit in non-test code under internal/.
func TestRepositoryInvariant(t *testing.T) {
	findings, n, err := scan("../../internal")
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("scanned no files; wrong working directory?")
	}
	if len(findings) != 0 {
		t.Fatalf("raw panics / os.Exit calls in internal/:\n%s", strings.Join(findings, "\n"))
	}
}
