#!/bin/sh
# check.sh — the repository's verification gate: vet, build, the full
# test suite, and the race detector over everything (the runner's
# parallel sweeps make -race a load-bearing check, not a formality).
#
# Usage: scripts/check.sh [-short]
#   -short   pass -short to the race run (skips the slow Fig. 12/13
#            sweeps; use for quick iteration, CI runs the full gate)
set -eu

cd "$(dirname "$0")/.."

short=""
if [ "${1:-}" = "-short" ]; then
    short="-short"
fi

echo "== go vet ./..."
go vet ./...

# Custom vet pass: no raw panic( or os.Exit( in non-test code under
# internal/ — runtime layers recover panics only at hardened pool
# boundaries; everywhere else failures must be typed errors — and no
# ambient clock reads (time.Now/time.Since outside the sanctioned
# wall-clock packages) or math/rand imports: every rendered artifact
# must be a pure function of its inputs.
echo "== vetnopanic"
go run ./scripts/vetnopanic

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

# The race run needs a raised -timeout: the full Fig. 12/13 sweeps under
# the race detector exceed go test's 10-minute default on small hosts.
echo "== go test -race -timeout 45m $short ./..."
go test -race -timeout 45m $short ./...

# Static contract verification: every workload and app kernel, in both
# modes, pre- and post-optimizer, must satisfy the LMI microcode
# contract (hint placement, address tracing, extent containment,
# free-path nullification). -elide-audit additionally recompiles every
# workload with static extent-check elision and re-derives each planted
# E bit from the linter's own register-level value analysis: any
# unsound-elide diagnostic, or a proven-out-of-bounds access in a
# shipped workload (which fails the elided compile itself), breaks the
# gate. -race additionally runs the static shared-memory race and
# barrier-divergence analyzer over every program in the corpus (both
# modes, pre- and post-optimizer, plus the elided compiles): any
# potential race, divergent barrier, or inexpressible shared address is
# a diagnostic. -spec-audit additionally partially evaluates every
# workload against its concrete launch contract and re-judges the
# specialization certificate's every transform with the independent
# audit (mechanical replay of the log plus a from-scratch re-proof of
# each elision and fold): any unsound specialization is a diagnostic.
# Nonzero exit on any diagnostic. Same run as `make analyze`.
echo "== lmi-lint -all -elide-audit -race -spec-audit"
go run ./cmd/lmi-lint -all -elide-audit -race -spec-audit

# Chaos determinism smoke: the fault-injection campaign must render
# byte-identical reports regardless of worker count — any divergence
# means a scheduling-order dependence crept into the engine.
echo "== chaos determinism smoke (-jobs 1 vs -jobs 4)"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/lmi-sec -chaos -seed 1 -trials 2 -jobs 1 > "$tmpdir/chaos-j1.txt"
go run ./cmd/lmi-sec -chaos -seed 1 -trials 2 -jobs 4 > "$tmpdir/chaos-j4.txt"
cmp "$tmpdir/chaos-j1.txt" "$tmpdir/chaos-j4.txt"

# The campaign above also replays the three synchronization-fault kinds
# (race-drop-bar, race-stride-perturb, race-demote-atomic); a trial only
# counts as detected when the static race analyzer and the dynamic race
# oracle agree on the planted conflict pairs at the exact instructions
# (the pinning itself is asserted instruction-by-instruction in
# internal/chaos TestRaceKindsExactPinning). Every race-kind matrix row
# must score det == n for every mechanism — any miss, toleration,
# false positive, or degradation on a race injection breaks the gate.
echo "== chaos race kinds all detected"
if ! grep -q 'race-drop-bar' "$tmpdir/chaos-j1.txt"; then
    echo "check: FAIL: chaos campaign did not run the race kinds" >&2
    exit 1
fi
awk '$2 ~ /^race-/ && $5 != $4 {
        print "check: FAIL: chaos race injection not fully detected: " $0
        bad = 1
     }
     END { exit bad }' "$tmpdir/chaos-j1.txt" >&2

# Race-oracle overhead sweep: the Fig. 12 corpus with the dynamic race
# oracle off vs armed. The sweep itself asserts the oracle never
# perturbs a cycle count and finds zero races on the statically-proven
# corpus; the JSON artifact carries no wall-clock data and must be
# byte-identical across worker counts. (BENCH_fig12_raceoracle.json is
# the committed cycle-tier artifact.)
echo "== race-oracle sweep determinism (-jobs 1 vs -jobs 4)"
go run ./cmd/lmi-bench -tier compiled -jobs 1 \
    -race-oracle-json "$tmpdir/raceoracle-j1.json" > /dev/null
go run ./cmd/lmi-bench -tier compiled -jobs 4 \
    -race-oracle-json "$tmpdir/raceoracle-j4.json" > /dev/null
cmp "$tmpdir/raceoracle-j1.json" "$tmpdir/raceoracle-j4.json"

# Contract-specialization sweep gate: the Fig. 12 corpus's general
# elided programs vs their certified residuals. The sweep itself
# asserts every residual preserves the fault/halt projection and the
# lane-access volume while strictly reducing total cycles and avoiding
# extent checks; its JSON artifact carries no wall-clock data, must be
# byte-identical across worker counts, and must match the committed
# cycle-tier artifact BENCH_fig12_peval.json (regenerate with
# `make peval` after a deliberate compiler/specializer change).
echo "== contract-specialization sweep determinism (-jobs 1 vs -jobs 4, committed artifact)"
go run ./cmd/lmi-bench -jobs 1 -peval-json "$tmpdir/peval-j1.json" > /dev/null
go run ./cmd/lmi-bench -jobs 4 -peval-json "$tmpdir/peval-j4.json" > /dev/null
cmp "$tmpdir/peval-j1.json" "$tmpdir/peval-j4.json"
cmp "$tmpdir/peval-j1.json" BENCH_fig12_peval.json

# Compiled-tier determinism smoke: the full bench sweep on the fast
# functional tier must render byte-identical output regardless of
# worker count, exactly like the cycle tier — the compiled closures run
# on the same deterministic runner pool. (The tier's bit-for-bit
# equivalence with the cycle simulator over the whole corpus is the
# differential gate inside `go test`: internal/fastsim and
# internal/chaos TestTierDifferential*.)
echo "== compiled-tier determinism smoke (-jobs 1 vs -jobs 4)"
go run ./cmd/lmi-bench -all -tier compiled -jobs 1 > "$tmpdir/bench-compiled-j1.txt"
go run ./cmd/lmi-bench -all -tier compiled -jobs 4 > "$tmpdir/bench-compiled-j4.txt"
cmp "$tmpdir/bench-compiled-j1.txt" "$tmpdir/bench-compiled-j4.txt"

# Serving soak smoke: 200 seeded chaos requests replayed through the
# serving state machines (admission queue, classified retries, circuit
# breaker) on the virtual timeline. The soak itself exits nonzero on
# any robustness violation (untyped per-request error, missing result,
# escaped panic), and the verbose report — every count, timestamp, and
# per-request line — must be byte-identical across worker counts.
echo "== serving soak smoke (-jobs 1 vs -jobs 4)"
go run ./cmd/lmi-serve -soak -seed 2 -requests 200 -jobs 1 -v > "$tmpdir/soak-j1.txt"
go run ./cmd/lmi-serve -soak -seed 2 -requests 200 -jobs 4 -v > "$tmpdir/soak-j4.txt"
cmp "$tmpdir/soak-j1.txt" "$tmpdir/soak-j4.txt"

# Fleet soak gate: 100000 seeded requests sharded across 4 simulated
# device workers under scripted shard kills, rejoins, and burst
# overloads on the virtual timeline. The soak exits nonzero on any
# fleet robustness violation (a request silently dropped by shard
# death, a lost request without ErrShardLost, a shed without a typed
# overload error, a missing or dropped decision record, an
# inconsistent per-epoch breaker log) — and both the report and the
# per-request decision log must be byte-identical across worker
# counts.
echo "== fleet soak gate (100000 requests, 4 shards, -jobs 1 vs -jobs 4)"
go run ./cmd/lmi-serve -soak -shards 4 -seed 1 -requests 100000 -jobs 1 \
    -decision-log "$tmpdir/fleet-j1.jsonl" > "$tmpdir/fleet-j1.txt"
go run ./cmd/lmi-serve -soak -shards 4 -seed 1 -requests 100000 -jobs 4 \
    -decision-log "$tmpdir/fleet-j4.jsonl" > "$tmpdir/fleet-j4.txt"
cmp "$tmpdir/fleet-j1.txt" "$tmpdir/fleet-j4.txt"
cmp "$tmpdir/fleet-j1.jsonl" "$tmpdir/fleet-j4.jsonl"

# Signed-bundle gate. A fixed dev signing key (a test fixture, not a
# secret) builds the default workload trio into a bundle twice, at
# -jobs 1 and -jobs 4: the artifact bytes must be identical — entries
# build in canonical order on the deterministic runner pool and
# ed25519 signatures are deterministic, so parallelism must never
# change a byte. The bundle must then verify against the matching
# public key (signature, per-entry digests, and the three static
# passes re-run against the embedded certificates), and flipping a
# single byte of the artifact must be a typed fail-closed rejection
# (nonzero exit, "bundle rejected" on stderr) — the same path
# lmi-serve takes before opening its listener or accepting a reload.
echo "== signed bundle gate (build determinism, verify, tamper rejection)"
devkey=0101010101010101010101010101010101010101010101010101010101010101
devpub=$(go run ./cmd/lmi-compile -bundle "$tmpdir/bundle-j1.json" -key "$devkey" -jobs 1 \
    | awk '$1 == "signer" { print $2 }')
go run ./cmd/lmi-compile -bundle "$tmpdir/bundle-j4.json" -key "$devkey" -jobs 4 > /dev/null
cmp "$tmpdir/bundle-j1.json" "$tmpdir/bundle-j4.json"
go run ./cmd/lmi-compile -verify-bundle "$tmpdir/bundle-j1.json" -pub "$devpub" > /dev/null
# Flip one byte of the single-line artifact (the first '4' is a hex
# digit inside a digest or program word) and demand the typed
# rejection.
sed 's/4/5/' "$tmpdir/bundle-j1.json" > "$tmpdir/bundle-tampered.json"
if cmp -s "$tmpdir/bundle-j1.json" "$tmpdir/bundle-tampered.json"; then
    echo "check: FAIL: tamper edit changed nothing" >&2
    exit 1
fi
if go run ./cmd/lmi-compile -verify-bundle "$tmpdir/bundle-tampered.json" -pub "$devpub" \
    > /dev/null 2> "$tmpdir/bundle-reject.txt"; then
    echo "check: FAIL: tampered bundle verified" >&2
    exit 1
fi
if ! grep -q 'bundle rejected' "$tmpdir/bundle-reject.txt"; then
    echo "check: FAIL: tampered bundle not rejected with the typed error:" >&2
    cat "$tmpdir/bundle-reject.txt" >&2
    exit 1
fi

# Specialized-bundle gate. A bundle carrying a specialization record
# (the :spec suffix: residual program + concrete contract + certificate
# + the fourth, spec-audit certificate) must verify clean, and a
# single-byte tamper inside the specialization record must be the same
# typed fail-closed rejection as any other bundle corruption — the
# record rides inside the entry's code digest, so every certificate
# binding breaks at once.
echo "== specialized bundle gate (verify, single-byte spec-record tamper rejection)"
go run ./cmd/lmi-compile -bundle "$tmpdir/bundle-spec.json" -key "$devkey" \
    -bundle-workloads "backprop:elide,needle:spec,nn:elide" > /dev/null
go run ./cmd/lmi-compile -verify-bundle "$tmpdir/bundle-spec.json" -pub "$devpub" > /dev/null
# One byte inside the record's key material ("spec_code" ->
# "spec_c0de") makes the residual payload unreadable; the verifier
# must reject, not fall back to the general program.
sed 's/"spec_code"/"spec_c0de"/' "$tmpdir/bundle-spec.json" > "$tmpdir/bundle-spec-tampered.json"
if cmp -s "$tmpdir/bundle-spec.json" "$tmpdir/bundle-spec-tampered.json"; then
    echo "check: FAIL: spec tamper edit changed nothing" >&2
    exit 1
fi
if go run ./cmd/lmi-compile -verify-bundle "$tmpdir/bundle-spec-tampered.json" -pub "$devpub" \
    > /dev/null 2> "$tmpdir/bundle-spec-reject.txt"; then
    echo "check: FAIL: tampered specialized bundle verified" >&2
    exit 1
fi
if ! grep -q 'bundle rejected' "$tmpdir/bundle-spec-reject.txt"; then
    echo "check: FAIL: tampered specialized bundle not rejected with the typed error:" >&2
    cat "$tmpdir/bundle-spec-reject.txt" >&2
    exit 1
fi

# CLI validation smoke: out-of-range flags must fail with the uniform
# usage error (exit 2), not silent misbehavior.
echo "== CLI usage-error smoke"
for cmdline in "./cmd/lmi-sim -sms 0 -bench nn" \
               "./cmd/lmi-sec -trials 0" \
               "./cmd/lmi-bench -jobs -1 -table 2" \
               "./cmd/lmi-bench -tier warp -table 2" \
               "./cmd/lmi-sim -tier warp -bench nn" \
               "./cmd/lmi-serve -soak -requests 0" \
               "./cmd/lmi-serve -soak -shards 0" \
               "./cmd/lmi-serve -log-buffer 0 -soak -shards 2 -requests 1" \
               "./cmd/lmi-serve -bundle b.json" \
               "./cmd/lmi-serve -bundle b.json -bundle-pub zz" \
               "./cmd/lmi-compile -bench needle -elide maybe" \
               "./cmd/lmi-compile -bench needle -elide on -specialize -contract warp=32" \
               "./cmd/lmi-compile -bench needle -specialize" \
               "./cmd/lmi-compile -bench needle -elide on -contract n=64" \
               "./cmd/lmi-compile -bundle b.json -key abcd" \
               "./cmd/lmi-compile -bundle b.json -key @" \
               "./cmd/lmi-compile -bundle b.json -key $devkey -bundle-workloads nn:fast" \
               "./cmd/lmi-lint -all -mode fast"; do
    if go run $cmdline >/dev/null 2>&1; then
        echo "check: FAIL: 'go run $cmdline' accepted an invalid flag" >&2
        exit 1
    fi
done

echo "check: OK"
